//! One sharded partition: onodes, free tree, data blocks.
//!
//! Each partition is an independent in-place-update object store owned by a
//! single non-priority thread (§IV-C): no cross-partition locks, no
//! compaction, no host-side garbage collection. Writes overwrite data blocks
//! in place; metadata updates either hit the onode slot directly or park in
//! the NVM metadata cache; deletes are deferred ("delayed deallocation") to
//! the maintenance path.

use std::collections::HashMap;

use rablock_storage::{
    BlockDevice, IoCategory, MaintenanceReport, ObjectId, StoreError, TraceIo, TraceKind,
};

use crate::btree::ExtentBTree;
use crate::layout::{CosOptions, PartGeometry, BLOCK_BYTES};
use crate::metacache::MetaCache;
use crate::onode::{Extent, Onode, ONODE_BYTES};
use crate::radix::RadixTree;

/// Radix key: group in the high 16 bits, object index in the low 32.
///
/// # Panics
///
/// Panics if the object index exceeds 32 bits (a block image would need
/// billions of objects to get there).
pub(crate) fn radix_key(oid: ObjectId) -> u64 {
    let index = oid.index();
    assert!(index < (1 << 32), "object index exceeds 32 bits");
    ((oid.group().0 as u64) << 32) | index
}

/// A single sharded partition of the CPU-efficient object store.
#[derive(Debug)]
pub struct Partition {
    geom: PartGeometry,
    radix: RadixTree,
    onodes: HashMap<u32, Onode>,
    /// Spill run (first physical block, block count) per slot, when the
    /// extent map overflows the onode's inline area.
    spills: HashMap<u32, (u64, u64)>,
    /// Per-logical-block CRC32 per slot (checksum option only). Blocks a
    /// write never touched carry the all-zeroes CRC, so the map is fully
    /// content-determined: two replicas holding identical bytes always
    /// hold identical checksum vectors regardless of write history.
    csums: HashMap<u32, Vec<u32>>,
    /// Checksum run (first physical block, block count) per slot, holding
    /// the persisted form of `csums` (same allocation scheme as spills).
    csum_runs: HashMap<u32, (u64, u64)>,
    /// Verify data reads against `csums` and fail with `ChecksumMismatch`.
    checksums: bool,
    slot_used: Vec<bool>,
    slot_cursor: u32,
    free: ExtentBTree,
    cache: MetaCache,
    /// Onode slots marked deleted and awaiting deallocation.
    pending_dealloc: Vec<u32>,
    /// Allocator state changed since the last checkpoint.
    freetree_dirty: bool,
    /// Rotating slot for fixed-size allocator-delta journal records.
    alloc_journal_cursor: u64,
}

impl Partition {
    /// A freshly formatted partition (everything free, no objects).
    pub fn format(geom: PartGeometry, opts: &CosOptions) -> Self {
        Partition {
            radix: RadixTree::new(),
            onodes: HashMap::new(),
            spills: HashMap::new(),
            csums: HashMap::new(),
            csum_runs: HashMap::new(),
            checksums: opts.checksums,
            slot_used: vec![false; geom.onode_slots as usize],
            slot_cursor: 0,
            free: ExtentBTree::new_free(0, geom.data_blocks),
            cache: MetaCache::new(opts.meta_cache_entries),
            pending_dealloc: Vec::new(),
            freetree_dirty: false,
            alloc_journal_cursor: 0,
            geom,
        }
    }

    /// Mounts a partition by scanning its onode table and rebuilding the
    /// radix tree and free tree (crash recovery never trusts the free-tree
    /// checkpoint; the onodes are the ground truth, and REDO of data comes
    /// from the operation log one layer up).
    ///
    /// # Errors
    ///
    /// Propagates device errors and onode corruption.
    pub fn mount<D: BlockDevice>(
        dev: &mut D,
        geom: PartGeometry,
        opts: &CosOptions,
        trace: &mut Vec<TraceIo>,
    ) -> Result<Self, StoreError> {
        let mut p = Partition::format(geom, opts);
        p.free = ExtentBTree::new_free(0, geom.data_blocks);
        let table_bytes = geom.onode_slots as u64 * ONODE_BYTES as u64;
        let mut table = vec![0u8; table_bytes as usize];
        dev.read_at(geom.onode_off(0), &mut table)?;
        trace.push(TraceIo {
            kind: TraceKind::Read,
            bytes: table_bytes,
            category: IoCategory::Metadata,
        });
        for slot in 0..geom.onode_slots {
            let rec = &table[slot as usize * ONODE_BYTES..(slot as usize + 1) * ONODE_BYTES];
            let Some((mut onode, spill, total_extents)) = Onode::decode(rec)? else {
                continue;
            };
            if spill != 0 {
                let spill_count = total_extents as usize - crate::onode::INLINE_EXTENTS;
                let nblocks = spill_blocks_for(spill_count);
                let mut raw = vec![0u8; (nblocks * BLOCK_BYTES) as usize];
                dev.read_at(geom.block_off(spill), &mut raw)?;
                trace.push(TraceIo {
                    kind: TraceKind::Read,
                    bytes: nblocks * BLOCK_BYTES,
                    category: IoCategory::Metadata,
                });
                let spilled = decode_spill(&raw, total_extents as usize)?;
                for e in spilled {
                    onode.extents.insert(e);
                }
                p.free.alloc_specific(spill, nblocks)?;
                p.spills.insert(slot, (spill, nblocks));
            }
            if onode.csum_count > 0 {
                let nblocks = csum_blocks_for(onode.csum_count as usize);
                let mut raw = vec![0u8; (nblocks * BLOCK_BYTES) as usize];
                dev.read_at(geom.block_off(onode.csum_block), &mut raw)?;
                trace.push(TraceIo {
                    kind: TraceKind::Read,
                    bytes: nblocks * BLOCK_BYTES,
                    category: IoCategory::Metadata,
                });
                let list = decode_csums(&raw, onode.csum_count as usize)?;
                p.free.alloc_specific(onode.csum_block, nblocks)?;
                p.csum_runs.insert(slot, (onode.csum_block, nblocks));
                p.csums.insert(slot, list);
            }
            for e in onode.extents.entries() {
                p.free.alloc_specific(e.phys, e.count as u64)?;
            }
            p.slot_used[slot as usize] = true;
            let oid = ObjectId::from_raw(onode.oid_raw);
            p.radix.insert(radix_key(oid), slot);
            if onode.deleted {
                p.pending_dealloc.push(slot);
            }
            p.onodes.insert(slot, onode);
        }
        Ok(p)
    }

    /// Objects currently live in this partition.
    pub fn object_count(&self) -> usize {
        self.onodes.len() - self.pending_dealloc.len()
    }

    /// Free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free.free_blocks()
    }

    /// Bytes of onode updates absorbed by the NVM metadata cache.
    pub fn nvm_meta_bytes(&self) -> u64 {
        self.cache.nvm_bytes_written()
    }

    fn alloc_slot(&mut self) -> Result<u32, StoreError> {
        let n = self.slot_used.len();
        for probe in 0..n {
            let slot = (self.slot_cursor as usize + probe) % n;
            if !self.slot_used[slot] {
                self.slot_used[slot] = true;
                self.slot_cursor = (slot as u32 + 1) % n as u32;
                return Ok(slot as u32);
            }
        }
        Err(StoreError::NoSpace)
    }

    fn slot_of(&self, oid: ObjectId) -> Option<u32> {
        self.radix.get(radix_key(oid))
    }

    /// Allocates `blocks` data blocks as few extents as possible.
    fn alloc_blocks(&mut self, mut blocks: u64) -> Result<Vec<(u64, u64)>, StoreError> {
        let mut runs = Vec::new();
        while blocks > 0 {
            let chunk = blocks.min(self.free.largest_extent());
            if chunk == 0 {
                // Roll back partial allocation.
                for &(s, l) in &runs {
                    self.free.free(s, l).expect("just allocated");
                }
                return Err(StoreError::NoSpace);
            }
            let start = self.free.alloc(chunk)?;
            runs.push((start, chunk));
            blocks -= chunk;
        }
        self.freetree_dirty = true;
        Ok(runs)
    }

    fn persist_onode<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        slot: u32,
        opts: &CosOptions,
        alloc_changed: bool,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        if opts.metadata_cache {
            // The update lands in NVM; the device sees nothing unless the
            // cache is over capacity.
            for victim in self.cache.touch(slot) {
                self.write_onode_slot(dev, victim, trace)?;
            }
            return Ok(());
        }
        self.write_onode_slot(dev, slot, trace)?;
        if alloc_changed {
            // Without the NVM cache, an allocator change costs one extra
            // free-tree info write (§VI "Metadata Overhead": up to two
            // extra writes per object write without pre-allocation). Real
            // allocators journal a fixed-size delta, not the whole tree;
            // the full tree is checkpointed by maintenance.
            self.journal_alloc_delta(dev, trace)?;
        }
        Ok(())
    }

    fn write_onode_slot<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        slot: u32,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        let onode = self.onodes.get(&slot).expect("persisting a live onode");
        let spill_count = onode
            .extents
            .len()
            .saturating_sub(crate::onode::INLINE_EXTENTS);
        let spill_block = if spill_count > 0 {
            let need = spill_blocks_for(spill_count);
            match self.spills.get(&slot).copied() {
                Some((b, have)) if have >= need => b,
                prev => {
                    // Grow the spill run: release the old one, take a new
                    // contiguous run with headroom.
                    if let Some((old, old_n)) = prev {
                        self.free.free(old, old_n)?;
                    }
                    let take = need.next_power_of_two();
                    let b = self.free.alloc(take)?;
                    self.freetree_dirty = true;
                    self.spills.insert(slot, (b, take));
                    b
                }
            }
        } else {
            0
        };
        let csum_count = self.csums.get(&slot).map_or(0, Vec::len);
        let csum_block = if csum_count > 0 {
            let need = csum_blocks_for(csum_count);
            match self.csum_runs.get(&slot).copied() {
                Some((b, have)) if have >= need => b,
                prev => {
                    if let Some((old, old_n)) = prev {
                        self.free.free(old, old_n)?;
                    }
                    let take = need.next_power_of_two();
                    let b = self.free.alloc(take)?;
                    self.freetree_dirty = true;
                    self.csum_runs.insert(slot, (b, take));
                    b
                }
            }
        } else {
            0
        };
        {
            let onode = self.onodes.get_mut(&slot).expect("still live");
            onode.csum_block = csum_block;
            onode.csum_count = csum_count as u32;
        }
        if csum_count > 0 {
            let raw = encode_csums(&self.csums[&slot]);
            dev.write_at(self.geom.block_off(csum_block), &raw)?;
            trace.push(TraceIo {
                kind: TraceKind::Write,
                bytes: raw.len() as u64,
                category: IoCategory::Metadata,
            });
        }
        let onode = self.onodes.get(&slot).expect("still live");
        let (rec, spilled) = onode.encode(spill_block)?;
        if !spilled.is_empty() {
            let raw = encode_spill(&spilled);
            dev.write_at(self.geom.block_off(spill_block), &raw)?;
            trace.push(TraceIo {
                kind: TraceKind::Write,
                bytes: raw.len() as u64,
                category: IoCategory::Metadata,
            });
        }
        dev.write_at(self.geom.onode_off(slot), &rec)?;
        dev.flush()?;
        trace.push(TraceIo {
            kind: TraceKind::Write,
            bytes: ONODE_BYTES as u64,
            category: IoCategory::Metadata,
        });
        Ok(())
    }

    /// Appends a fixed-size allocator-delta record to the free-tree area
    /// (rotating slot; mount rebuilds from onodes, so only the write cost
    /// matters for fidelity).
    fn journal_alloc_delta<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        let slots = (self.geom.freetree_bytes / BLOCK_BYTES).max(1);
        let slot = self.alloc_journal_cursor % slots;
        self.alloc_journal_cursor += 1;
        let record = vec![0u8; BLOCK_BYTES as usize];
        dev.write_at(self.geom.freetree_off() + slot * BLOCK_BYTES, &record)?;
        dev.flush()?;
        trace.push(TraceIo {
            kind: TraceKind::Write,
            bytes: BLOCK_BYTES,
            category: IoCategory::Metadata,
        });
        Ok(())
    }

    fn checkpoint_freetree<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        // Serialize as many extents as fit; mount rebuilds from onodes, so a
        // truncated checkpoint only costs recovery time, never correctness.
        let extents = self.free.iter();
        let max = ((self.geom.freetree_bytes - 8) / 16) as usize;
        let mut raw = Vec::with_capacity(self.geom.freetree_bytes as usize);
        raw.extend_from_slice(&(extents.len().min(max) as u32).to_le_bytes());
        raw.extend_from_slice(&(self.free.free_blocks()).to_le_bytes()[..4]);
        for (s, l) in extents.into_iter().take(max) {
            raw.extend_from_slice(&s.to_le_bytes());
            raw.extend_from_slice(&l.to_le_bytes());
        }
        dev.write_at(self.geom.freetree_off(), &raw)?;
        dev.flush()?;
        trace.push(TraceIo {
            kind: TraceKind::Write,
            bytes: raw.len() as u64,
            category: IoCategory::Metadata,
        });
        self.freetree_dirty = false;
        Ok(())
    }

    /// Pre-creates an object of `size` bytes, allocating its data blocks
    /// up front when pre-allocation is enabled. Idempotent for existing
    /// objects (size may only grow).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] when slots or blocks run out.
    pub fn create<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        oid: ObjectId,
        size: u64,
        seq: u64,
        opts: &CosOptions,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        let slot = match self.slot_of(oid) {
            Some(slot) => slot,
            None => {
                let slot = self.alloc_slot()?;
                self.radix.insert(radix_key(oid), slot);
                self.onodes.insert(slot, Onode::new(oid.raw()));
                slot
            }
        };
        let mut alloc_changed = false;
        {
            let onode = self.onodes.get_mut(&slot).expect("just ensured");
            onode.size = onode.size.max(size);
            onode.version += 1;
            onode.mtime = seq;
        }
        if opts.pre_allocate {
            let want_blocks = size.div_ceil(BLOCK_BYTES);
            // The existing map can be a sparse subset, not a contiguous
            // prefix: bare writes to a never-created object map only the
            // written blocks, and a later create (recovery backfill) must
            // fill the holes without touching what is already mapped.
            let holes: Vec<u64> = {
                let onode = &self.onodes[&slot];
                (0..want_blocks)
                    .filter(|&b| onode.extents.map(b).is_none())
                    .collect()
            };
            if !holes.is_empty() {
                let runs = self.alloc_blocks(holes.len() as u64)?;
                let onode = self.onodes.get_mut(&slot).expect("live");
                let mut next_hole = holes.into_iter();
                for (start, len) in runs {
                    for i in 0..len {
                        let logical = next_hole.next().expect("one block per hole");
                        onode.extents.insert(Extent {
                            logical,
                            phys: start + i,
                            count: 1,
                        });
                    }
                }
                alloc_changed = true;
            }
        }
        self.persist_onode(dev, slot, opts, alloc_changed, trace)
    }

    /// Writes `data` at byte `offset` of the object, in place.
    ///
    /// Unaligned edges are read-modified-written at block granularity, as
    /// the paper observes for its YCSB runs (§V-E).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] if block allocation fails (non-pre-allocated
    /// objects only).
    #[allow(clippy::too_many_arguments)]
    pub fn write<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        oid: ObjectId,
        offset: u64,
        data: &[u8],
        seq: u64,
        opts: &CosOptions,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        if data.is_empty() {
            return Err(StoreError::InvalidArgument("zero-length write".into()));
        }
        let slot = match self.slot_of(oid) {
            Some(s) => s,
            None => {
                // Implicit create (objects are normally pre-created by the
                // block layer; bare object writes still work).
                self.create(
                    dev,
                    oid,
                    0,
                    seq,
                    &CosOptions {
                        pre_allocate: false,
                        ..opts.clone()
                    },
                    trace,
                )?;
                self.slot_of(oid).expect("created above")
            }
        };
        if self.onodes[&slot].deleted {
            // Reuse after delete: finish the deferred deallocation for this
            // object now and start clean.
            self.dealloc_slot(dev, slot, trace)?;
            self.create(
                dev,
                oid,
                0,
                seq,
                &CosOptions {
                    pre_allocate: false,
                    ..opts.clone()
                },
                trace,
            )?;
        }
        let slot = self.slot_of(oid).expect("live object");
        let end = offset + data.len() as u64;
        let first_block = offset / BLOCK_BYTES;
        let last_block = (end - 1) / BLOCK_BYTES;

        // Ensure every covered block is mapped; remember which are fresh.
        let mut fresh = Vec::new();
        let mut alloc_changed = false;
        for block in first_block..=last_block {
            if self.onodes[&slot].extents.map(block).is_none() {
                let runs = self.alloc_blocks(1)?;
                let onode = self.onodes.get_mut(&slot).expect("live");
                onode.extents.insert(Extent {
                    logical: block,
                    phys: runs[0].0,
                    count: 1,
                });
                fresh.push(block);
                alloc_changed = true;
            }
        }

        // Issue device writes per physically contiguous run, with RMW at
        // unaligned edges of pre-existing blocks.
        let mut new_crcs: Vec<(u64, u32)> = Vec::new();
        let mut block = first_block;
        while block <= last_block {
            let phys = self.onodes[&slot].extents.map(block).expect("mapped above");
            // Extend the run while physically contiguous.
            let mut run_len = 1u64;
            while block + run_len <= last_block
                && self.onodes[&slot].extents.map(block + run_len) == Some(phys + run_len)
            {
                run_len += 1;
            }
            let run_start_byte = (block * BLOCK_BYTES).max(offset);
            let run_end_byte = ((block + run_len) * BLOCK_BYTES).min(end);
            let last_run_block = block + run_len - 1;
            let head_partial = !run_start_byte.is_multiple_of(BLOCK_BYTES);
            let tail_partial = !run_end_byte.is_multiple_of(BLOCK_BYTES);
            let src_from = (run_start_byte - offset) as usize;
            let src_to = (run_end_byte - offset) as usize;
            if !head_partial && !tail_partial {
                // Fully block-aligned run: the caller's bytes cover every
                // touched block, so write them straight through instead of
                // staging into a zeroed scratch buffer.
                dev.write_at(self.geom.block_off(phys), &data[src_from..src_to])?;
                trace.push(TraceIo {
                    kind: TraceKind::Write,
                    bytes: run_len * BLOCK_BYTES,
                    category: IoCategory::Data,
                });
                if self.checksums {
                    for i in 0..run_len {
                        let s = src_from + (i * BLOCK_BYTES) as usize;
                        new_crcs
                            .push((block + i, crate::crc32(&data[s..s + BLOCK_BYTES as usize])));
                    }
                }
                block += run_len;
                continue;
            }
            let mut buf = vec![0u8; (run_len * BLOCK_BYTES) as usize];
            // RMW at partial edges of blocks that existed before this write
            // (fresh blocks read as zeroes by definition).
            let read_block = |b: u64,
                              buf: &mut [u8],
                              dev: &mut D,
                              trace: &mut Vec<TraceIo>|
             -> Result<(), StoreError> {
                let off_in_buf = ((b - block) * BLOCK_BYTES) as usize;
                dev.read_at(
                    self.geom.block_off(phys + (b - block)),
                    &mut buf[off_in_buf..off_in_buf + BLOCK_BYTES as usize],
                )?;
                trace.push(TraceIo {
                    kind: TraceKind::Read,
                    bytes: BLOCK_BYTES,
                    category: IoCategory::Data,
                });
                if self.checksums {
                    // An RMW edge folds old bytes into the new block; never
                    // launder rotted bytes into a freshly valid checksum.
                    let got = crate::crc32(&buf[off_in_buf..off_in_buf + BLOCK_BYTES as usize]);
                    let want = self
                        .csums
                        .get(&slot)
                        .and_then(|v| v.get(b as usize).copied())
                        .unwrap_or_else(zero_block_crc);
                    if got != want {
                        return Err(StoreError::ChecksumMismatch);
                    }
                }
                Ok(())
            };
            if head_partial && !fresh.contains(&block) {
                read_block(block, &mut buf, dev, trace)?;
            }
            if tail_partial
                && !fresh.contains(&last_run_block)
                && !(last_run_block == block && head_partial)
            {
                read_block(last_run_block, &mut buf, dev, trace)?;
            }
            let dst_from = (run_start_byte - block * BLOCK_BYTES) as usize;
            buf[dst_from..dst_from + (src_to - src_from)].copy_from_slice(&data[src_from..src_to]);
            // In-place overwrite of the whole touched block range.
            dev.write_at(self.geom.block_off(phys), &buf)?;
            trace.push(TraceIo {
                kind: TraceKind::Write,
                bytes: run_len * BLOCK_BYTES,
                category: IoCategory::Data,
            });
            if self.checksums {
                for i in 0..run_len {
                    let s = (i * BLOCK_BYTES) as usize;
                    new_crcs.push((block + i, crate::crc32(&buf[s..s + BLOCK_BYTES as usize])));
                }
            }
            block += run_len;
        }
        dev.flush()?;
        if self.checksums {
            let v = self.csums.entry(slot).or_default();
            for &(b, c) in &new_crcs {
                if v.len() <= b as usize {
                    v.resize(b as usize + 1, zero_block_crc());
                }
                v[b as usize] = c;
            }
        }

        let onode = self.onodes.get_mut(&slot).expect("live");
        onode.size = onode.size.max(end);
        onode.version += 1;
        onode.mtime = seq;
        self.persist_onode(dev, slot, opts, alloc_changed, trace)
    }

    /// Reads `len` bytes at `offset`. Unmapped holes read as zeroes.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for missing/deleted objects,
    /// [`StoreError::OutOfBounds`] past the object size.
    pub fn read<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        oid: ObjectId,
        offset: u64,
        len: u64,
        trace: &mut Vec<TraceIo>,
    ) -> Result<Vec<u8>, StoreError> {
        let slot = self.slot_of(oid).ok_or(StoreError::NotFound)?;
        let onode = self.onodes.get(&slot).expect("radix maps to live slot");
        if onode.deleted {
            return Err(StoreError::NotFound);
        }
        if offset + len > onode.size {
            return Err(StoreError::OutOfBounds {
                offset,
                len,
                capacity: onode.size,
            });
        }
        let mut out = vec![0u8; len as usize];
        if len == 0 {
            return Ok(out);
        }
        let end = offset + len;
        let first_block = offset / BLOCK_BYTES;
        let last_block = (end - 1) / BLOCK_BYTES;
        let mut block = first_block;
        while block <= last_block {
            let Some(phys) = onode.extents.map(block) else {
                block += 1;
                continue;
            };
            let mut run_len = 1u64;
            while block + run_len <= last_block
                && onode.extents.map(block + run_len) == Some(phys + run_len)
            {
                run_len += 1;
            }
            let from = (block * BLOCK_BYTES).max(offset);
            let to = ((block + run_len) * BLOCK_BYTES).min(end);
            if self.checksums {
                // Verification is block-granular: read whole blocks, check
                // each CRC, then copy out the requested byte range.
                let mut blk = vec![0u8; (run_len * BLOCK_BYTES) as usize];
                dev.read_at(self.geom.block_off(phys), &mut blk)?;
                trace.push(TraceIo {
                    kind: TraceKind::Read,
                    bytes: run_len * BLOCK_BYTES,
                    category: IoCategory::Data,
                });
                for i in 0..run_len {
                    let s = (i * BLOCK_BYTES) as usize;
                    let got = crate::crc32(&blk[s..s + BLOCK_BYTES as usize]);
                    let want = self
                        .csums
                        .get(&slot)
                        .and_then(|v| v.get((block + i) as usize).copied())
                        .unwrap_or_else(zero_block_crc);
                    if got != want {
                        return Err(StoreError::ChecksumMismatch);
                    }
                }
                let b0 = (from - block * BLOCK_BYTES) as usize;
                out[(from - offset) as usize..(to - offset) as usize]
                    .copy_from_slice(&blk[b0..b0 + (to - from) as usize]);
            } else {
                let dev_off = self.geom.block_off(phys) + (from - block * BLOCK_BYTES);
                dev.read_at(
                    dev_off,
                    &mut out[(from - offset) as usize..(to - offset) as usize],
                )?;
                trace.push(TraceIo {
                    kind: TraceKind::Read,
                    bytes: to - from,
                    category: IoCategory::Data,
                });
            }
            block += run_len;
        }
        Ok(out)
    }

    /// Sets an xattr; persists through the metadata path.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for missing objects; oversized xattrs are
    /// [`StoreError::InvalidArgument`].
    #[allow(clippy::too_many_arguments)]
    pub fn set_xattr<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        oid: ObjectId,
        key: &str,
        value: Vec<u8>,
        seq: u64,
        opts: &CosOptions,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        let slot = self.slot_of(oid).ok_or(StoreError::NotFound)?;
        let onode = self.onodes.get_mut(&slot).expect("live");
        onode.set_xattr(key, value);
        onode.version += 1;
        onode.mtime = seq;
        self.persist_onode(dev, slot, opts, false, trace)
    }

    /// Stat (size/version/mtime) of a live object.
    pub fn stat(&self, oid: ObjectId) -> Option<(u64, u64, u64)> {
        let slot = self.slot_of(oid)?;
        let o = self.onodes.get(&slot)?;
        (!o.deleted).then_some((o.size, o.version, o.mtime))
    }

    /// Reads back an xattr of a live object.
    #[allow(dead_code)] // symmetric API to set_xattr; exercised via the store
    pub fn xattr(&self, oid: ObjectId, key: &str) -> Option<Vec<u8>> {
        let slot = self.slot_of(oid)?;
        self.onodes
            .get(&slot)
            .and_then(|o| o.xattr(key))
            .map(<[u8]>::to_vec)
    }

    /// Marks the object deleted; blocks are deallocated later by
    /// [`Partition::maintenance`] (delayed deallocation, §IV-C-5).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the object does not exist.
    pub fn delete<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        oid: ObjectId,
        seq: u64,
        opts: &CosOptions,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        let slot = self.slot_of(oid).ok_or(StoreError::NotFound)?;
        let onode = self.onodes.get_mut(&slot).expect("live");
        if onode.deleted {
            return Err(StoreError::NotFound);
        }
        onode.deleted = true;
        onode.version += 1;
        onode.mtime = seq;
        self.pending_dealloc.push(slot);
        self.persist_onode(dev, slot, opts, false, trace)
    }

    fn dealloc_slot<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        slot: u32,
        trace: &mut Vec<TraceIo>,
    ) -> Result<(), StoreError> {
        let Some(mut onode) = self.onodes.remove(&slot) else {
            return Ok(());
        };
        for e in onode.extents.take_all() {
            self.free.free(e.phys, e.count as u64)?;
        }
        if let Some((spill, nblocks)) = self.spills.remove(&slot) {
            self.free.free(spill, nblocks)?;
        }
        if let Some((run, nblocks)) = self.csum_runs.remove(&slot) {
            self.free.free(run, nblocks)?;
        }
        self.csums.remove(&slot);
        self.freetree_dirty = true;
        self.radix
            .remove(radix_key(ObjectId::from_raw(onode.oid_raw)));
        self.cache.forget(slot);
        self.slot_used[slot as usize] = false;
        self.pending_dealloc.retain(|&s| s != slot);
        // Zero the slot on disk so mount does not resurrect it.
        dev.write_at(self.geom.onode_off(slot), &[0u8; ONODE_BYTES])?;
        dev.flush()?;
        trace.push(TraceIo {
            kind: TraceKind::Write,
            bytes: ONODE_BYTES as u64,
            category: IoCategory::Metadata,
        });
        Ok(())
    }

    /// True if deferred work is queued (deallocations, dirty metadata, or a
    /// stale free-tree checkpoint).
    pub fn needs_maintenance(&self) -> bool {
        !self.pending_dealloc.is_empty()
            || self.cache.dirty_count() > self.cache_high_water()
            || self.freetree_dirty
    }

    fn cache_high_water(&self) -> usize {
        // Flush when more than half the cache capacity is dirty.
        usize::max(1, self.cache.capacity() / 2)
    }

    /// One bounded maintenance step.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn maintenance<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        trace: &mut Vec<TraceIo>,
    ) -> Result<MaintenanceReport, StoreError> {
        let before = trace.len();
        let mut did_work = false;
        while let Some(slot) = self.pending_dealloc.pop() {
            self.dealloc_slot(dev, slot, trace)?;
            did_work = true;
        }
        if self.cache.dirty_count() > self.cache_high_water() {
            for slot in self.cache.drain_oldest(self.cache_high_water()) {
                if self.onodes.contains_key(&slot) {
                    self.write_onode_slot(dev, slot, trace)?;
                }
            }
            did_work = true;
        }
        if self.freetree_dirty {
            self.checkpoint_freetree(dev, trace)?;
            did_work = true;
        }
        let (mut br, mut bw) = (0, 0);
        for io in &trace[before..] {
            match io.kind {
                TraceKind::Read => br += io.bytes,
                TraceKind::Write => bw += io.bytes,
                TraceKind::Flush => {}
            }
        }
        Ok(MaintenanceReport {
            bytes_read: br,
            bytes_written: bw,
            did_work,
        })
    }

    /// Light-scrub digest: (size, FNV over the per-block checksum vector),
    /// computed from metadata alone — no data blocks are read. Two replicas
    /// holding identical bytes produce identical digests regardless of the
    /// write history that got them there. `None` for missing/deleted
    /// objects or when checksums are disabled.
    pub fn csum_digest(&self, oid: ObjectId) -> Option<(u64, u64)> {
        if !self.checksums {
            return None;
        }
        let slot = self.slot_of(oid)?;
        let o = self.onodes.get(&slot)?;
        if o.deleted {
            return None;
        }
        fn fnv(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x100_0000_01b3)
        }
        let v = self.csums.get(&slot);
        let mut h = fnv(0xcbf2_9ce4_8422_2325, o.size);
        for b in 0..o.size.div_ceil(BLOCK_BYTES) {
            let c = v
                .and_then(|v| v.get(b as usize).copied())
                .unwrap_or_else(zero_block_crc);
            h = fnv(h, c as u64);
        }
        Some((o.size, h))
    }

    /// Fault injection: flips one bit of the stored data of `oid` directly
    /// on the device, bypassing the checksum bookkeeping — exactly what
    /// silent media corruption does. Returns `false` when the target block
    /// is not mapped (nothing to rot).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn corrupt_data_bit<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        oid: ObjectId,
        block: u64,
        byte: u64,
        bit: u8,
    ) -> Result<bool, StoreError> {
        let Some(slot) = self.slot_of(oid) else {
            return Ok(false);
        };
        let onode = &self.onodes[&slot];
        if onode.deleted {
            return Ok(false);
        }
        let Some(phys) = onode.extents.map(block) else {
            return Ok(false);
        };
        let off = self.geom.block_off(phys) + (byte % BLOCK_BYTES);
        let mut b = [0u8; 1];
        dev.read_at(off, &mut b)?;
        b[0] ^= 1 << (bit % 8);
        dev.write_at(off, &b)?;
        Ok(true)
    }

    /// Number of data blocks currently mapped for `oid` (fault-injection
    /// targeting helper).
    pub fn mapped_blocks(&self, oid: ObjectId) -> u64 {
        let Some(slot) = self.slot_of(oid) else {
            return 0;
        };
        let o = &self.onodes[&slot];
        if o.deleted {
            return 0;
        }
        o.size.div_ceil(BLOCK_BYTES)
    }
}

/// CRC32 of an all-zeroes 4 KiB block: the checksum of every block a write
/// never touched (holes read as zeroes).
fn zero_block_crc() -> u32 {
    static Z: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *Z.get_or_init(|| crate::crc32(&[0u8; BLOCK_BYTES as usize]))
}

/// Blocks needed to hold `n` per-block checksums (4 bytes each + header).
fn csum_blocks_for(n: usize) -> u64 {
    ((4 + n * 4) as u64).div_ceil(BLOCK_BYTES)
}

fn encode_csums(list: &[u32]) -> Vec<u8> {
    let nblocks = csum_blocks_for(list.len());
    let mut raw = vec![0u8; (nblocks * BLOCK_BYTES) as usize];
    raw[..4].copy_from_slice(&(list.len() as u32).to_le_bytes());
    for (i, c) in list.iter().enumerate() {
        raw[4 + i * 4..8 + i * 4].copy_from_slice(&c.to_le_bytes());
    }
    raw
}

fn decode_csums(raw: &[u8], expected: usize) -> Result<Vec<u32>, StoreError> {
    let count = u32::from_le_bytes(raw[..4].try_into().expect("4 bytes")) as usize;
    if count != expected {
        return Err(StoreError::Corrupt(format!(
            "checksum run holds {count} entries, onode expects {expected}"
        )));
    }
    Ok((0..count)
        .map(|i| u32::from_le_bytes(raw[4 + i * 4..8 + i * 4].try_into().expect("4 bytes")))
        .collect())
}

/// Blocks needed to hold `n` spilled extents (20 bytes each + header).
fn spill_blocks_for(n: usize) -> u64 {
    ((4 + n * 20) as u64).div_ceil(BLOCK_BYTES)
}

fn encode_spill(extents: &[Extent]) -> Vec<u8> {
    let nblocks = spill_blocks_for(extents.len());
    let mut raw = vec![0u8; (nblocks * BLOCK_BYTES) as usize];
    raw[..4].copy_from_slice(&(extents.len() as u32).to_le_bytes());
    let mut w = 4;
    for e in extents {
        raw[w..w + 8].copy_from_slice(&e.logical.to_le_bytes());
        raw[w + 8..w + 16].copy_from_slice(&e.phys.to_le_bytes());
        raw[w + 16..w + 20].copy_from_slice(&e.count.to_le_bytes());
        w += 20;
    }
    raw
}

fn decode_spill(raw: &[u8], total_extents: usize) -> Result<Vec<Extent>, StoreError> {
    let count = u32::from_le_bytes(raw[..4].try_into().expect("4 bytes")) as usize;
    let expected = total_extents.saturating_sub(crate::onode::INLINE_EXTENTS);
    if count != expected {
        return Err(StoreError::Corrupt(format!(
            "spill block holds {count} extents, onode expects {expected}"
        )));
    }
    let mut out = Vec::with_capacity(count);
    let mut r = 4;
    for _ in 0..count {
        out.push(Extent {
            logical: u64::from_le_bytes(raw[r..r + 8].try_into().expect("8 bytes")),
            phys: u64::from_le_bytes(raw[r + 8..r + 16].try_into().expect("8 bytes")),
            count: u32::from_le_bytes(raw[r + 16..r + 20].try_into().expect("4 bytes")),
        });
        r += 20;
    }
    Ok(out)
}
