//! Onodes: fixed-size object metadata records.
//!
//! Each object has one 512-byte onode (§IV-C "Onode Tree Info Area"): id,
//! size/version/mtime, an extent-based `block_map` from logical to physical
//! blocks, and a small extended-attribute map. Up to [`INLINE_EXTENTS`]
//! extents embed directly; pathological fragmentation spills the remainder
//! to a metadata block referenced by the onode (pre-allocated objects always
//! fit inline — that is the point of pre-allocation).

use rablock_storage::StoreError;

/// Fixed on-disk size of one onode.
pub const ONODE_BYTES: usize = 512;
/// Extents that fit inline in the onode.
pub const INLINE_EXTENTS: usize = 16;
/// Bytes reserved for the inline xattr map.
const XATTR_AREA: usize = ONODE_BYTES - HEADER_BYTES - INLINE_EXTENTS * EXTENT_BYTES - 4;
// magic, oid, size, version, mtime, generation, flags, extent count,
// spill block, csum block, csum count.
const HEADER_BYTES: usize = 4 + 8 + 8 + 8 + 8 + 4 + 4 + 4 + 8 + 8 + 4;
const EXTENT_BYTES: usize = 8 + 8 + 4;
const MAGIC: u32 = 0x4F4E_4F44; // "ONOD"

/// One run of the logical→physical block map.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Extent {
    /// First logical block within the object.
    pub logical: u64,
    /// First physical block within the partition's data area.
    pub phys: u64,
    /// Run length in blocks.
    pub count: u32,
}

/// A sorted, merged logical→physical block map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtentMap {
    entries: Vec<Extent>,
}

impl ExtentMap {
    /// An empty map (nothing allocated).
    pub fn new() -> Self {
        ExtentMap::default()
    }

    /// The extents, sorted by logical block.
    pub fn entries(&self) -> &[Extent] {
        &self.entries
    }

    /// Number of extents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Physical block backing `logical`, if mapped.
    pub fn map(&self, logical: u64) -> Option<u64> {
        let idx = self.entries.partition_point(|e| e.logical <= logical);
        if idx == 0 {
            return None;
        }
        let e = &self.entries[idx - 1];
        let off = logical - e.logical;
        (off < e.count as u64).then(|| e.phys + off)
    }

    /// Adds a mapping, merging with adjacent runs when contiguous on both
    /// sides.
    ///
    /// # Panics
    ///
    /// Panics if the logical range is already mapped (allocator bug).
    pub fn insert(&mut self, ext: Extent) {
        assert!(ext.count > 0, "empty extent");
        for b in [ext.logical, ext.logical + ext.count as u64 - 1] {
            assert!(self.map(b).is_none(), "logical block {b} double-mapped");
        }
        let idx = self.entries.partition_point(|e| e.logical < ext.logical);
        self.entries.insert(idx, ext);
        // Merge with the successor, then the predecessor.
        if idx + 1 < self.entries.len() {
            let (a, b) = (self.entries[idx], self.entries[idx + 1]);
            if a.logical + a.count as u64 == b.logical && a.phys + a.count as u64 == b.phys {
                self.entries[idx].count += b.count;
                self.entries.remove(idx + 1);
            }
        }
        if idx > 0 {
            let (a, b) = (self.entries[idx - 1], self.entries[idx]);
            if a.logical + a.count as u64 == b.logical && a.phys + a.count as u64 == b.phys {
                self.entries[idx - 1].count += b.count;
                self.entries.remove(idx);
            }
        }
    }

    /// Removes every mapping (delete path); returns the freed extents.
    pub fn take_all(&mut self) -> Vec<Extent> {
        std::mem::take(&mut self.entries)
    }
}

impl FromIterator<Extent> for ExtentMap {
    fn from_iter<I: IntoIterator<Item = Extent>>(iter: I) -> Self {
        let mut m = ExtentMap::new();
        for e in iter {
            m.insert(e);
        }
        m
    }
}

/// In-memory form of one object's metadata record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Onode {
    /// Raw object id this onode describes.
    pub oid_raw: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Monotonic version.
    pub version: u64,
    /// Logical mtime (sequence of the last mutating transaction).
    pub mtime: u64,
    /// Generation, bumped by delete+recreate.
    pub generation: u32,
    /// Delayed-deallocation flag (§IV-C-5): the object is dead but its
    /// blocks have not been returned to the free tree yet.
    pub deleted: bool,
    /// Logical→physical block map.
    pub extents: ExtentMap,
    /// Extended attributes (small, inline).
    pub xattrs: Vec<(String, Vec<u8>)>,
    /// First block of the per-block checksum run (0 = none persisted).
    pub csum_block: u64,
    /// Number of per-block checksums persisted in the run.
    pub csum_count: u32,
}

impl Onode {
    /// A fresh onode for `oid_raw`.
    pub fn new(oid_raw: u64) -> Self {
        Onode {
            oid_raw,
            size: 0,
            version: 0,
            mtime: 0,
            generation: 0,
            deleted: false,
            extents: ExtentMap::new(),
            xattrs: Vec::new(),
            csum_block: 0,
            csum_count: 0,
        }
    }

    /// Sets or replaces an xattr.
    pub fn set_xattr(&mut self, key: &str, value: Vec<u8>) {
        if let Some(slot) = self.xattrs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.xattrs.push((key.to_string(), value));
        }
    }

    /// Reads an xattr.
    pub fn xattr(&self, key: &str) -> Option<&[u8]> {
        self.xattrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// Encodes into the fixed 512-byte record.
    ///
    /// The first [`INLINE_EXTENTS`] extents embed inline; the rest are
    /// returned for the caller to persist in the spill block referenced by
    /// `spill_block` (pass 0 when everything fits).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidArgument`] if the xattr map exceeds its inline
    /// area, or if extents spill but `spill_block` is 0.
    pub fn encode(&self, spill_block: u64) -> Result<([u8; ONODE_BYTES], Vec<Extent>), StoreError> {
        let mut buf = [0u8; ONODE_BYTES];
        let spilled: Vec<Extent> = self
            .extents
            .entries()
            .iter()
            .skip(INLINE_EXTENTS)
            .copied()
            .collect();
        if !spilled.is_empty() && spill_block == 0 {
            return Err(StoreError::InvalidArgument(
                "extent map spills but no spill block provided".into(),
            ));
        }
        let mut w = 0usize;
        let put = |buf: &mut [u8; ONODE_BYTES], bytes: &[u8], w: &mut usize| {
            buf[*w..*w + bytes.len()].copy_from_slice(bytes);
            *w += bytes.len();
        };
        put(&mut buf, &MAGIC.to_le_bytes(), &mut w);
        put(&mut buf, &self.oid_raw.to_le_bytes(), &mut w);
        put(&mut buf, &self.size.to_le_bytes(), &mut w);
        put(&mut buf, &self.version.to_le_bytes(), &mut w);
        put(&mut buf, &self.mtime.to_le_bytes(), &mut w);
        put(&mut buf, &self.generation.to_le_bytes(), &mut w);
        let flags: u32 = if self.deleted { 1 } else { 0 };
        put(&mut buf, &flags.to_le_bytes(), &mut w);
        put(&mut buf, &(self.extents.len() as u32).to_le_bytes(), &mut w);
        put(&mut buf, &spill_block.to_le_bytes(), &mut w);
        put(&mut buf, &self.csum_block.to_le_bytes(), &mut w);
        put(&mut buf, &self.csum_count.to_le_bytes(), &mut w);
        for e in self.extents.entries().iter().take(INLINE_EXTENTS) {
            put(&mut buf, &e.logical.to_le_bytes(), &mut w);
            put(&mut buf, &e.phys.to_le_bytes(), &mut w);
            put(&mut buf, &e.count.to_le_bytes(), &mut w);
        }
        w = HEADER_BYTES + INLINE_EXTENTS * EXTENT_BYTES;
        // Xattrs: u16 count, then (u8 klen, key, u16 vlen, value)*.
        let mut xa = Vec::new();
        xa.extend_from_slice(&(self.xattrs.len() as u16).to_le_bytes());
        for (k, v) in &self.xattrs {
            if k.len() > u8::MAX as usize || v.len() > u16::MAX as usize {
                return Err(StoreError::InvalidArgument("oversized xattr".into()));
            }
            xa.push(k.len() as u8);
            xa.extend_from_slice(k.as_bytes());
            xa.extend_from_slice(&(v.len() as u16).to_le_bytes());
            xa.extend_from_slice(v);
        }
        if xa.len() > XATTR_AREA {
            return Err(StoreError::InvalidArgument(format!(
                "xattr map of {} bytes exceeds inline area of {XATTR_AREA}",
                xa.len()
            )));
        }
        put(&mut buf, &xa, &mut w);
        let crc = crate::crc32(&buf[..ONODE_BYTES - 4]);
        buf[ONODE_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
        Ok((buf, spilled))
    }

    /// Decodes a 512-byte record. Returns the onode (inline extents only)
    /// and the spill block (0 if none); the caller appends spilled extents.
    ///
    /// Returns `Ok(None)` for an all-zero (never written) slot.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on bad magic or CRC.
    pub fn decode(buf: &[u8]) -> Result<Option<(Onode, u64, u32)>, StoreError> {
        assert_eq!(buf.len(), ONODE_BYTES, "onode records are fixed-size");
        if buf.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        let crc_stored = u32::from_le_bytes(buf[ONODE_BYTES - 4..].try_into().expect("4 bytes"));
        if crate::crc32(&buf[..ONODE_BYTES - 4]) != crc_stored {
            return Err(StoreError::Corrupt("onode crc mismatch".into()));
        }
        let rd_u32 = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().expect("4 bytes"));
        let rd_u64 = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("8 bytes"));
        if rd_u32(0) != MAGIC {
            return Err(StoreError::Corrupt("onode bad magic".into()));
        }
        let oid_raw = rd_u64(4);
        let size = rd_u64(12);
        let version = rd_u64(20);
        let mtime = rd_u64(28);
        let generation = rd_u32(36);
        let flags = rd_u32(40);
        let total_extents = rd_u32(44);
        let spill_block = rd_u64(48);
        let csum_block = rd_u64(56);
        let csum_count = rd_u32(64);
        let mut extents = ExtentMap::new();
        let inline = (total_extents as usize).min(INLINE_EXTENTS);
        for i in 0..inline {
            let o = HEADER_BYTES + i * EXTENT_BYTES;
            extents.insert(Extent {
                logical: rd_u64(o),
                phys: rd_u64(o + 8),
                count: rd_u32(o + 16),
            });
        }
        let xa_off = HEADER_BYTES + INLINE_EXTENTS * EXTENT_BYTES;
        let count = u16::from_le_bytes(buf[xa_off..xa_off + 2].try_into().expect("2 bytes"));
        let mut pos = xa_off + 2;
        let mut xattrs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let klen = buf[pos] as usize;
            pos += 1;
            let key = String::from_utf8(buf[pos..pos + klen].to_vec())
                .map_err(|_| StoreError::Corrupt("non-utf8 xattr key".into()))?;
            pos += klen;
            let vlen = u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("2 bytes")) as usize;
            pos += 2;
            let value = buf[pos..pos + vlen].to_vec();
            pos += vlen;
            xattrs.push((key, value));
        }
        Ok(Some((
            Onode {
                oid_raw,
                size,
                version,
                mtime,
                generation,
                deleted: flags & 1 != 0,
                extents,
                xattrs,
                csum_block,
                csum_count,
            },
            spill_block,
            total_extents,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_map_maps_and_merges() {
        let mut m = ExtentMap::new();
        m.insert(Extent {
            logical: 0,
            phys: 100,
            count: 4,
        });
        m.insert(Extent {
            logical: 4,
            phys: 104,
            count: 4,
        }); // contiguous both sides
        assert_eq!(m.len(), 1, "merged into one run");
        assert_eq!(m.map(0), Some(100));
        assert_eq!(m.map(7), Some(107));
        assert_eq!(m.map(8), None);
        m.insert(Extent {
            logical: 10,
            phys: 500,
            count: 2,
        });
        assert_eq!(m.len(), 2);
        assert_eq!(m.map(11), Some(501));
        assert_eq!(m.map(9), None);
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn extent_double_map_panics() {
        let mut m = ExtentMap::new();
        m.insert(Extent {
            logical: 0,
            phys: 0,
            count: 4,
        });
        m.insert(Extent {
            logical: 2,
            phys: 50,
            count: 1,
        });
    }

    #[test]
    fn onode_encode_decode_round_trip() {
        let mut o = Onode::new(0xDEAD_BEEF);
        o.size = 4 << 20;
        o.version = 17;
        o.mtime = 99;
        o.generation = 2;
        o.extents.insert(Extent {
            logical: 0,
            phys: 4096,
            count: 1024,
        });
        o.set_xattr("snapset", vec![1, 2, 3]);
        o.set_xattr("oi", vec![9; 40]);
        let (buf, spilled) = o.encode(0).unwrap();
        assert!(spilled.is_empty());
        let (decoded, spill, total) = Onode::decode(&buf).unwrap().unwrap();
        assert_eq!(decoded, o);
        assert_eq!(spill, 0);
        assert_eq!(total, 1);
    }

    #[test]
    fn zero_slot_decodes_as_absent() {
        assert_eq!(Onode::decode(&[0u8; ONODE_BYTES]).unwrap(), None);
    }

    #[test]
    fn corruption_detected() {
        let (mut buf, _) = Onode::new(5).encode(0).unwrap();
        buf[10] ^= 0xFF;
        assert!(matches!(Onode::decode(&buf), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn fragmented_map_spills_beyond_inline() {
        let mut o = Onode::new(1);
        // 20 non-mergeable extents.
        for i in 0..20u64 {
            o.extents.insert(Extent {
                logical: i * 2,
                phys: 1000 + i * 10,
                count: 1,
            });
        }
        assert!(o.encode(0).is_err(), "spill requires a spill block");
        let (buf, spilled) = o.encode(777).unwrap();
        assert_eq!(spilled.len(), 4);
        let (decoded, spill, total) = Onode::decode(&buf).unwrap().unwrap();
        assert_eq!(spill, 777);
        assert_eq!(total, 20);
        assert_eq!(decoded.extents.len(), INLINE_EXTENTS);
    }

    #[test]
    fn oversized_xattrs_rejected() {
        let mut o = Onode::new(1);
        o.set_xattr("big", vec![0u8; 300]);
        assert!(matches!(o.encode(0), Err(StoreError::InvalidArgument(_))));
    }

    #[test]
    fn xattr_overwrite_replaces() {
        let mut o = Onode::new(1);
        o.set_xattr("k", vec![1]);
        o.set_xattr("k", vec![2]);
        assert_eq!(o.xattr("k"), Some(&[2u8][..]));
        assert_eq!(o.xattrs.len(), 1);
    }

    #[test]
    fn csum_run_pointer_round_trips() {
        let mut o = Onode::new(7);
        o.csum_block = 1234;
        o.csum_count = 256;
        let (buf, _) = o.encode(0).unwrap();
        let (d, _, _) = Onode::decode(&buf).unwrap().unwrap();
        assert_eq!(d.csum_block, 1234);
        assert_eq!(d.csum_count, 256);
        assert_eq!(d, o);
    }

    #[test]
    fn deleted_flag_round_trips() {
        let mut o = Onode::new(3);
        o.deleted = true;
        let (buf, _) = o.encode(0).unwrap();
        let (d, _, _) = Onode::decode(&buf).unwrap().unwrap();
        assert!(d.deleted);
    }
}
