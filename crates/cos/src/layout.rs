//! On-disk geometry of the CPU-efficient object store.
//!
//! The device is statically divided into equal partitions (§IV-C Disk
//! Layout), each owned by exactly one non-priority thread so I/O proceeds in
//! parallel without lock contention. Every partition holds a header, an
//! onode table, a free-tree checkpoint area, and the data-block area.

use rablock_storage::StoreError;

use crate::onode::ONODE_BYTES;

/// Store-wide superblock size.
pub const SUPERBLOCK_BYTES: u64 = 4096;
/// Per-partition header size.
pub const PART_HEADER_BYTES: u64 = 4096;
/// Data block size: Ceph-style 4 KiB.
pub const BLOCK_BYTES: u64 = 4096;

/// Tuning and feature toggles for [`CosObjectStore`](crate::CosObjectStore).
#[derive(Debug, Clone)]
pub struct CosOptions {
    /// Number of sharded partitions.
    pub partitions: usize,
    /// Onode slots per partition (max objects per partition).
    pub onode_slots: u32,
    /// Pre-allocate object data at `Create` time (paper §IV-C: avoids all
    /// further allocator/metadata updates for fixed-size objects).
    pub pre_allocate: bool,
    /// Keep onode updates in the NVM metadata cache instead of writing the
    /// onode slot on every transaction (paper Fig. 8 "metadata cache").
    pub metadata_cache: bool,
    /// Dirty onodes held in NVM before maintenance must write them back.
    pub meta_cache_entries: usize,
    /// Bytes reserved per partition for free-tree checkpoints.
    pub freetree_bytes: u64,
    /// Keep a CRC32 per written data block and verify it on every read
    /// path, so silent media corruption surfaces as
    /// [`StoreError::ChecksumMismatch`](rablock_storage::StoreError)
    /// instead of wrong bytes. Off by default: the WAF experiments model
    /// the paper's store, which does not checksum data.
    pub checksums: bool,
}

impl Default for CosOptions {
    fn default() -> Self {
        CosOptions {
            partitions: 4,
            onode_slots: 4096,
            pre_allocate: true,
            metadata_cache: true,
            meta_cache_entries: 1024,
            freetree_bytes: 64 << 10,
            checksums: false,
        }
    }
}

impl CosOptions {
    /// A configuration small enough for unit tests.
    pub fn tiny() -> Self {
        CosOptions {
            partitions: 2,
            onode_slots: 128,
            pre_allocate: true,
            metadata_cache: true,
            meta_cache_entries: 16,
            freetree_bytes: 16 << 10,
            checksums: false,
        }
    }
}

/// Resolved geometry of one partition within the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartGeometry {
    /// Device offset of the partition header.
    pub region_off: u64,
    /// Total bytes of the partition region.
    pub region_len: u64,
    /// Onode slots.
    pub onode_slots: u32,
    /// Bytes reserved for free-tree checkpoints.
    pub freetree_bytes: u64,
    /// Number of data blocks.
    pub data_blocks: u64,
}

impl PartGeometry {
    /// Computes geometry for partition `idx` of `count` on a device of
    /// `capacity` bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidArgument`] if the device is too small to hold
    /// the metadata areas plus at least one data block per partition.
    pub fn compute(
        capacity: u64,
        idx: usize,
        opts: &CosOptions,
    ) -> Result<PartGeometry, StoreError> {
        let count = opts.partitions as u64;
        let usable = capacity
            .checked_sub(SUPERBLOCK_BYTES)
            .ok_or_else(|| StoreError::InvalidArgument("device smaller than superblock".into()))?;
        let region_len = usable / count;
        let meta =
            PART_HEADER_BYTES + opts.onode_slots as u64 * ONODE_BYTES as u64 + opts.freetree_bytes;
        if region_len < meta + BLOCK_BYTES {
            return Err(StoreError::InvalidArgument(format!(
                "partition of {region_len} bytes cannot hold {meta} metadata bytes plus data"
            )));
        }
        let data_blocks = (region_len - meta) / BLOCK_BYTES;
        Ok(PartGeometry {
            region_off: SUPERBLOCK_BYTES + idx as u64 * region_len,
            region_len,
            onode_slots: opts.onode_slots,
            freetree_bytes: opts.freetree_bytes,
            data_blocks,
        })
    }

    /// Device offset of onode slot `slot`.
    pub fn onode_off(&self, slot: u32) -> u64 {
        debug_assert!(slot < self.onode_slots);
        self.region_off + PART_HEADER_BYTES + slot as u64 * ONODE_BYTES as u64
    }

    /// Device offset of the free-tree checkpoint area.
    pub fn freetree_off(&self) -> u64 {
        self.region_off + PART_HEADER_BYTES + self.onode_slots as u64 * ONODE_BYTES as u64
    }

    /// Device offset of data block `block`.
    pub fn block_off(&self, block: u64) -> u64 {
        debug_assert!(
            block < self.data_blocks,
            "block {block} >= {}",
            self.data_blocks
        );
        self.freetree_off() + self.freetree_bytes + block * BLOCK_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_partitions_are_disjoint_and_in_bounds() {
        let opts = CosOptions {
            partitions: 4,
            ..CosOptions::tiny()
        };
        let cap = 64 << 20;
        let mut prev_end = SUPERBLOCK_BYTES;
        for i in 0..4 {
            let g = PartGeometry::compute(cap, i, &opts).unwrap();
            assert_eq!(g.region_off, prev_end);
            prev_end = g.region_off + g.region_len;
            assert!(g.block_off(g.data_blocks - 1) + BLOCK_BYTES <= prev_end);
        }
        assert!(prev_end <= cap);
    }

    #[test]
    fn onode_and_freetree_offsets_do_not_overlap_data() {
        let g = PartGeometry::compute(32 << 20, 0, &CosOptions::tiny()).unwrap();
        assert!(g.onode_off(g.onode_slots - 1) + ONODE_BYTES as u64 <= g.freetree_off());
        assert!(g.freetree_off() + g.freetree_bytes <= g.block_off(0));
    }

    #[test]
    fn too_small_device_rejected() {
        let err = PartGeometry::compute(1 << 20, 0, &CosOptions::default());
        assert!(matches!(err, Err(StoreError::InvalidArgument(_))));
    }
}
