//! NVM metadata cache.
//!
//! Object metadata (version, mtime) changes on every write; persisting the
//! onode to disk each time costs an extra device write per request. The
//! paper keeps those updates in NVM instead (§IV-C-7), flushing to the
//! metadata area only under space pressure — pushing host-side write
//! amplification to ~1.0 (Fig. 8-b). This cache tracks which onodes are
//! dirty-in-NVM and decides when write-back is due, in LRU order.
//!
//! The LRU uses stamp-based lazy deletion: every `touch` appends a
//! `(stamp, slot)` pair to the queue and records the slot's newest stamp in
//! a map, so refreshing a hot slot is O(1) instead of an O(n) scan.
//! Entries whose stamp no longer matches the map are stale and skipped
//! when they surface at the front. Eviction order is identical to the
//! scan-and-remove formulation: only the newest entry per slot counts.

use std::collections::VecDeque;

use rablock_storage::FxHashMap;

use crate::onode::ONODE_BYTES;

/// Tracks onodes whose latest version lives only in NVM.
#[derive(Debug, Clone)]
pub struct MetaCache {
    capacity: usize,
    /// Dirty slots, least-recently-updated first. Holds one live entry per
    /// dirty slot plus stale entries from refreshes, pruned lazily.
    lru: VecDeque<(u64, u32)>,
    /// Current stamp per dirty slot; an `lru` entry is live iff its stamp
    /// matches. Deterministic hashing, and never iterated.
    stamps: FxHashMap<u32, u64>,
    /// Monotonic touch counter (stamp source).
    clock: u64,
    nvm_bytes_written: u64,
    writebacks: u64,
}

impl MetaCache {
    /// A cache that holds at most `capacity` dirty onodes in NVM.
    pub fn new(capacity: usize) -> Self {
        MetaCache {
            capacity,
            lru: VecDeque::new(),
            stamps: FxHashMap::default(),
            clock: 0,
            nvm_bytes_written: 0,
            writebacks: 0,
        }
    }

    /// Records an onode update landing in NVM. Returns slots that must be
    /// written back to the device *now* to stay within capacity.
    pub fn touch(&mut self, slot: u32) -> Vec<u32> {
        self.clock += 1;
        self.stamps.insert(slot, self.clock);
        self.lru.push_back((self.clock, slot));
        self.nvm_bytes_written += ONODE_BYTES as u64;
        let mut evicted = Vec::new();
        while self.stamps.len() > self.capacity {
            let victim = self.pop_oldest().expect("dirty count > capacity > 0");
            self.writebacks += 1;
            evicted.push(victim);
        }
        self.prune_front();
        evicted
    }

    /// Removes a slot without write-back (object deleted). Its queue entry
    /// goes stale and is skipped when it reaches the front.
    pub fn forget(&mut self, slot: u32) {
        self.stamps.remove(&slot);
        self.prune_front();
    }

    /// Dirty onodes currently parked in NVM.
    pub fn dirty_count(&self) -> usize {
        self.stamps.len()
    }

    /// Configured capacity (max dirty onodes before forced write-back).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drains up to `n` of the oldest dirty slots for background write-back.
    pub fn drain_oldest(&mut self, n: usize) -> Vec<u32> {
        let n = n.min(self.stamps.len());
        self.writebacks += n as u64;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            out.push(self.pop_oldest().expect("n bounded by dirty count"));
        }
        out
    }

    /// Total bytes of onode updates absorbed by NVM.
    pub fn nvm_bytes_written(&self) -> u64 {
        self.nvm_bytes_written
    }

    /// Total onode write-backs to the device this cache has demanded.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Pops the least-recently-touched live slot, discarding stale entries.
    fn pop_oldest(&mut self) -> Option<u32> {
        while let Some((stamp, slot)) = self.lru.pop_front() {
            if self.stamps.get(&slot) == Some(&stamp) {
                self.stamps.remove(&slot);
                return Some(slot);
            }
        }
        None
    }

    /// Drops stale entries sitting at the front so the queue's length stays
    /// proportional to the live count even under pathological re-touch
    /// patterns.
    fn prune_front(&mut self) {
        while let Some(&(stamp, slot)) = self.lru.front() {
            if self.stamps.get(&slot) == Some(&stamp) {
                break;
            }
            self.lru.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_never_evicts() {
        let mut c = MetaCache::new(4);
        for slot in 0..4 {
            assert!(c.touch(slot).is_empty());
        }
        assert_eq!(c.dirty_count(), 4);
    }

    #[test]
    fn eviction_is_lru() {
        let mut c = MetaCache::new(2);
        assert!(c.touch(1).is_empty());
        assert!(c.touch(2).is_empty());
        c.touch(1); // refresh 1, making 2 the oldest
        assert_eq!(c.touch(3), vec![2]);
    }

    #[test]
    fn retouching_does_not_duplicate() {
        let mut c = MetaCache::new(8);
        c.touch(5);
        c.touch(5);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn drain_and_forget() {
        let mut c = MetaCache::new(8);
        for s in 0..5 {
            c.touch(s);
        }
        c.forget(2);
        assert_eq!(c.drain_oldest(2), vec![0, 1]);
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.writebacks(), 2);
    }

    #[test]
    fn nvm_bytes_accumulate() {
        let mut c = MetaCache::new(2);
        c.touch(0);
        c.touch(1);
        assert_eq!(c.nvm_bytes_written(), 2 * ONODE_BYTES as u64);
    }

    #[test]
    fn forget_then_drain_skips_stale_entries() {
        let mut c = MetaCache::new(8);
        for s in 0..4 {
            c.touch(s);
        }
        // Refresh 0 (stale entry at front) and forget 1.
        c.touch(0);
        c.forget(1);
        assert_eq!(c.drain_oldest(3), vec![2, 3, 0]);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn heavy_retouch_matches_scan_reference() {
        // Differential check against the O(n) scan formulation.
        let mut fast = MetaCache::new(3);
        let mut slow: VecDeque<u32> = VecDeque::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let slot = ((x >> 33) % 8) as u32;
            if (x >> 20).is_multiple_of(10) {
                fast.forget(slot);
                if let Some(pos) = slow.iter().position(|&s| s == slot) {
                    slow.remove(pos);
                }
                continue;
            }
            let evicted = fast.touch(slot);
            if let Some(pos) = slow.iter().position(|&s| s == slot) {
                slow.remove(pos);
            }
            slow.push_back(slot);
            let mut expect = Vec::new();
            while slow.len() > 3 {
                expect.push(slow.pop_front().unwrap());
            }
            assert_eq!(evicted, expect);
            assert_eq!(fast.dirty_count(), slow.len());
        }
    }
}
