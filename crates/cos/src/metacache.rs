//! NVM metadata cache.
//!
//! Object metadata (version, mtime) changes on every write; persisting the
//! onode to disk each time costs an extra device write per request. The
//! paper keeps those updates in NVM instead (§IV-C-7), flushing to the
//! metadata area only under space pressure — pushing host-side write
//! amplification to ~1.0 (Fig. 8-b). This cache tracks which onodes are
//! dirty-in-NVM and decides when write-back is due, in LRU order.

use std::collections::VecDeque;

use crate::onode::ONODE_BYTES;

/// Tracks onodes whose latest version lives only in NVM.
#[derive(Debug, Clone)]
pub struct MetaCache {
    capacity: usize,
    /// Dirty slots, least-recently-updated first.
    lru: VecDeque<u32>,
    nvm_bytes_written: u64,
    writebacks: u64,
}

impl MetaCache {
    /// A cache that holds at most `capacity` dirty onodes in NVM.
    pub fn new(capacity: usize) -> Self {
        MetaCache {
            capacity,
            lru: VecDeque::new(),
            nvm_bytes_written: 0,
            writebacks: 0,
        }
    }

    /// Records an onode update landing in NVM. Returns slots that must be
    /// written back to the device *now* to stay within capacity.
    pub fn touch(&mut self, slot: u32) -> Vec<u32> {
        if let Some(pos) = self.lru.iter().position(|&s| s == slot) {
            self.lru.remove(pos);
        }
        self.lru.push_back(slot);
        self.nvm_bytes_written += ONODE_BYTES as u64;
        let mut evicted = Vec::new();
        while self.lru.len() > self.capacity {
            let victim = self.lru.pop_front().expect("len > capacity > 0");
            self.writebacks += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Removes a slot without write-back (object deleted).
    pub fn forget(&mut self, slot: u32) {
        if let Some(pos) = self.lru.iter().position(|&s| s == slot) {
            self.lru.remove(pos);
        }
    }

    /// Dirty onodes currently parked in NVM.
    pub fn dirty_count(&self) -> usize {
        self.lru.len()
    }

    /// Configured capacity (max dirty onodes before forced write-back).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drains up to `n` of the oldest dirty slots for background write-back.
    pub fn drain_oldest(&mut self, n: usize) -> Vec<u32> {
        let n = n.min(self.lru.len());
        self.writebacks += n as u64;
        self.lru.drain(..n).collect()
    }

    /// Total bytes of onode updates absorbed by NVM.
    pub fn nvm_bytes_written(&self) -> u64 {
        self.nvm_bytes_written
    }

    /// Total onode write-backs to the device this cache has demanded.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_never_evicts() {
        let mut c = MetaCache::new(4);
        for slot in 0..4 {
            assert!(c.touch(slot).is_empty());
        }
        assert_eq!(c.dirty_count(), 4);
    }

    #[test]
    fn eviction_is_lru() {
        let mut c = MetaCache::new(2);
        assert!(c.touch(1).is_empty());
        assert!(c.touch(2).is_empty());
        c.touch(1); // refresh 1, making 2 the oldest
        assert_eq!(c.touch(3), vec![2]);
    }

    #[test]
    fn retouching_does_not_duplicate() {
        let mut c = MetaCache::new(8);
        c.touch(5);
        c.touch(5);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn drain_and_forget() {
        let mut c = MetaCache::new(8);
        for s in 0..5 {
            c.touch(s);
        }
        c.forget(2);
        assert_eq!(c.drain_oldest(2), vec![0, 1]);
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.writebacks(), 2);
    }

    #[test]
    fn nvm_bytes_accumulate() {
        let mut c = MetaCache::new(2);
        c.touch(0);
        c.touch(1);
        assert_eq!(c.nvm_bytes_written(), 2 * ONODE_BYTES as u64);
    }
}
