//! Small shared helpers.

/// CRC-32 (IEEE, reflected) for onode and checkpoint records.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Slice-by-8: eight derived tables let the hot loop fold 8 input bytes
    // per iteration instead of one. Identical output to the classic
    // byte-at-a-time form (same polynomial, same reflection).
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    #[test]
    fn crc32_check_value() {
        assert_eq!(super::crc32(b"123456789"), 0xCBF4_3926);
    }
}
