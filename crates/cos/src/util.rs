//! Small shared helpers.

/// CRC-32 (IEEE, reflected) for onode and checkpoint records.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    #[test]
    fn crc32_check_value() {
        assert_eq!(super::crc32(b"123456789"), 0xCBF4_3926);
    }
}
