//! The CPU-efficient object store: sharded partitions behind one device.
//!
//! [`CosObjectStore`] implements the workspace-wide
//! [`ObjectStore`](rablock_storage::ObjectStore) contract over
//! [`Partition`]s. Logical groups map to partitions by simple modulo
//! (§IV-C-2 "I/O Distribution"), so one non-priority thread can own each
//! partition without cross-thread locking. Store-level key/value records
//! (Ceph's `object_info_t`, pg log) are kept in memory and riding the NVM
//! operation log for durability, never costing device I/O — one of the two
//! big CPU/WAF savings over the LSM backend.

use std::collections::HashMap;

use rablock_storage::{
    BlockDevice, GroupId, MaintenanceReport, ObjectId, ObjectInfo, ObjectStore, Op, StoreError,
    StoreStats, TraceIo, Transaction,
};

use crate::layout::{CosOptions, PartGeometry, SUPERBLOCK_BYTES};
use crate::partition::Partition;

const SB_MAGIC: u32 = 0x434F_5331; // "COS1"

/// The paper's CPU-efficient object store backend.
///
/// ```
/// use rablock_cos::{CosObjectStore, CosOptions};
/// use rablock_storage::{MemDisk, ObjectStore, ObjectId, GroupId, Op, Transaction};
/// # fn main() -> Result<(), rablock_storage::StoreError> {
/// let mut store = CosObjectStore::format(MemDisk::new(64 << 20), CosOptions::tiny())?;
/// let oid = ObjectId::new(GroupId(0), 1);
/// store.submit(Transaction::new(GroupId(0), 1, vec![
///     Op::Create { oid, size: 4 << 20 },
///     Op::Write { oid, offset: 0, data: b"hello".to_vec().into() },
/// ]))?;
/// assert_eq!(store.read(oid, 0, 5)?, b"hello");
/// # Ok(())
/// # }
/// ```
pub struct CosObjectStore<D: BlockDevice> {
    dev: D,
    opts: CosOptions,
    partitions: Vec<Partition>,
    /// Store-level KV records (pg log, object_info_t). Durability comes from
    /// the NVM operation log above this layer, so they cost no device I/O.
    meta_kv: HashMap<Vec<u8>, Vec<u8>>,
    trace: Vec<TraceIo>,
    stats: StoreStats,
}

impl<D: BlockDevice> CosObjectStore<D> {
    /// Formats a fresh store on `dev`.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidArgument`] if the device cannot hold the
    /// configured partitions.
    pub fn format(mut dev: D, opts: CosOptions) -> Result<Self, StoreError> {
        let mut partitions = Vec::with_capacity(opts.partitions);
        for i in 0..opts.partitions {
            let geom = PartGeometry::compute(dev.capacity(), i, &opts)?;
            partitions.push(Partition::format(geom, &opts));
        }
        let mut sb = vec![0u8; SUPERBLOCK_BYTES as usize];
        sb[..4].copy_from_slice(&SB_MAGIC.to_le_bytes());
        sb[4..8].copy_from_slice(&(opts.partitions as u32).to_le_bytes());
        sb[8..12].copy_from_slice(&opts.onode_slots.to_le_bytes());
        dev.write_at(0, &sb)?;
        dev.flush()?;
        Ok(CosObjectStore {
            dev,
            opts,
            partitions,
            meta_kv: HashMap::new(),
            trace: Vec::new(),
            stats: StoreStats::default(),
        })
    }

    /// Mounts an existing store, rebuilding in-memory state from the onode
    /// tables (crash recovery; data REDO is the operation log's job).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on a bad superblock or onode corruption.
    pub fn mount(mut dev: D, opts: CosOptions) -> Result<Self, StoreError> {
        let mut sb = vec![0u8; SUPERBLOCK_BYTES as usize];
        dev.read_at(0, &mut sb)?;
        if u32::from_le_bytes(sb[..4].try_into().expect("4 bytes")) != SB_MAGIC {
            return Err(StoreError::Corrupt("bad store superblock magic".into()));
        }
        let parts = u32::from_le_bytes(sb[4..8].try_into().expect("4 bytes")) as usize;
        let slots = u32::from_le_bytes(sb[8..12].try_into().expect("4 bytes"));
        if parts != opts.partitions || slots != opts.onode_slots {
            return Err(StoreError::Corrupt(format!(
                "superblock geometry ({parts} partitions, {slots} slots) does not match options"
            )));
        }
        let mut trace = Vec::new();
        let mut partitions = Vec::with_capacity(parts);
        for i in 0..parts {
            let geom = PartGeometry::compute(dev.capacity(), i, &opts)?;
            partitions.push(Partition::mount(&mut dev, geom, &opts, &mut trace)?);
        }
        let mut stats = StoreStats::default();
        for io in &trace {
            stats.record(*io);
        }
        Ok(CosObjectStore {
            dev,
            opts,
            partitions,
            meta_kv: HashMap::new(),
            trace,
            stats,
        })
    }

    /// The configured options.
    pub fn options(&self) -> &CosOptions {
        &self.opts
    }

    /// Immutable access to the device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Consumes the store, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Partition index serving `group`.
    pub fn partition_of(&self, group: GroupId) -> usize {
        group.0 as usize % self.partitions.len()
    }

    /// Bytes of onode updates absorbed by the NVM metadata cache, across
    /// all partitions.
    pub fn nvm_meta_bytes(&self) -> u64 {
        self.partitions.iter().map(Partition::nvm_meta_bytes).sum()
    }

    /// Free data blocks per partition (scalability diagnostics).
    pub fn free_blocks_per_partition(&self) -> Vec<u64> {
        self.partitions.iter().map(Partition::free_blocks).collect()
    }

    fn part_for(&mut self, oid: ObjectId) -> &mut Partition {
        let idx = oid.group().0 as usize % self.partitions.len();
        &mut self.partitions[idx]
    }

    /// Light-scrub digest of `oid`: (size, FNV over the per-block checksum
    /// vector), computed without reading any data blocks. `None` when the
    /// object is missing/deleted or checksums are disabled.
    pub fn csum_digest(&self, oid: ObjectId) -> Option<(u64, u64)> {
        let idx = self.partition_of(oid.group());
        self.partitions[idx].csum_digest(oid)
    }

    /// Fault injection: flips one bit of `oid`'s stored data directly on
    /// the device, bypassing checksum bookkeeping (silent bit rot).
    /// Returns `false` when the target block is not mapped.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn corrupt_data_bit(
        &mut self,
        oid: ObjectId,
        block: u64,
        byte: u64,
        bit: u8,
    ) -> Result<bool, StoreError> {
        let idx = self.partition_of(oid.group());
        let (dev, part) = (&mut self.dev, &mut self.partitions[idx]);
        part.corrupt_data_bit(dev, oid, block, byte, bit)
    }

    /// Number of data blocks covered by `oid`'s size (fault-injection
    /// targeting helper).
    pub fn mapped_blocks(&self, oid: ObjectId) -> u64 {
        let idx = self.partition_of(oid.group());
        self.partitions[idx].mapped_blocks(oid)
    }

    fn absorb(&mut self, tmp: Vec<TraceIo>) {
        for io in tmp {
            self.stats.record(io);
            self.trace.push(io);
        }
    }
}

impl<D: BlockDevice> ObjectStore for CosObjectStore<D> {
    fn submit(&mut self, txn: Transaction) -> Result<(), StoreError> {
        let mut tmp = Vec::new();
        let seq = txn.seq;
        let opts = self.opts.clone();
        for op in &txn.ops {
            match op {
                Op::Create { oid, size } => {
                    let idx = self.partition_of(oid.group());
                    let (dev, part) = (&mut self.dev, &mut self.partitions[idx]);
                    part.create(dev, *oid, *size, seq, &opts, &mut tmp)?;
                }
                Op::Write { oid, offset, data } => {
                    let idx = self.partition_of(oid.group());
                    let (dev, part) = (&mut self.dev, &mut self.partitions[idx]);
                    part.write(dev, *oid, *offset, data, seq, &opts, &mut tmp)?;
                    self.stats.user_bytes += data.len() as u64;
                }
                Op::SetXattr { oid, key, value } => {
                    let idx = self.partition_of(oid.group());
                    let (dev, part) = (&mut self.dev, &mut self.partitions[idx]);
                    part.set_xattr(dev, *oid, key, value.clone(), seq, &opts, &mut tmp)?;
                }
                Op::MetaPut { key, value } => {
                    self.meta_kv.insert(key.clone(), value.clone());
                }
                Op::MetaDelete { key } => {
                    self.meta_kv.remove(key);
                }
                Op::Delete { oid } => {
                    let idx = self.partition_of(oid.group());
                    let (dev, part) = (&mut self.dev, &mut self.partitions[idx]);
                    part.delete(dev, *oid, seq, &opts, &mut tmp)?;
                }
            }
        }
        self.stats.transactions += 1;
        self.absorb(tmp);
        Ok(())
    }

    fn read(&mut self, oid: ObjectId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let idx = self.partition_of(oid.group());
        let mut tmp = Vec::new();
        let (dev, part) = (&mut self.dev, &mut self.partitions[idx]);
        let out = part.read(dev, oid, offset, len, &mut tmp)?;
        self.absorb(tmp);
        Ok(out)
    }

    fn stat(&mut self, oid: ObjectId) -> Option<ObjectInfo> {
        let part = self.part_for(oid);
        part.stat(oid).map(|(size, version, mtime)| ObjectInfo {
            size,
            version,
            mtime,
        })
    }

    fn get_meta(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.meta_kv.get(key).cloned()
    }

    fn needs_maintenance(&self) -> bool {
        self.partitions.iter().any(Partition::needs_maintenance)
    }

    fn maintenance(&mut self) -> MaintenanceReport {
        let mut total = MaintenanceReport::default();
        let mut tmp = Vec::new();
        for part in &mut self.partitions {
            if part.needs_maintenance() {
                if let Ok(r) = part.maintenance(&mut self.dev, &mut tmp) {
                    total.bytes_read += r.bytes_read;
                    total.bytes_written += r.bytes_written;
                    total.did_work |= r.did_work;
                }
            }
        }
        self.absorb(tmp);
        total
    }

    fn take_trace(&mut self) -> Vec<TraceIo> {
        std::mem::take(&mut self.trace)
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    fn partitions(&self) -> usize {
        self.partitions.len()
    }
}

impl<D: BlockDevice> std::fmt::Debug for CosObjectStore<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CosObjectStore")
            .field("partitions", &self.partitions.len())
            .field(
                "objects",
                &self
                    .partitions
                    .iter()
                    .map(Partition::object_count)
                    .sum::<usize>(),
            )
            .field("transactions", &self.stats.transactions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rablock_storage::MemDisk;

    fn oid(group: u32, i: u64) -> ObjectId {
        ObjectId::new(GroupId(group), i)
    }

    fn write_txn(seq: u64, o: ObjectId, offset: u64, data: Vec<u8>) -> Transaction {
        Transaction::new(
            o.group(),
            seq,
            vec![Op::Write {
                oid: o,
                offset,
                data: data.into(),
            }],
        )
    }

    fn fresh(opts: CosOptions) -> CosObjectStore<MemDisk> {
        CosObjectStore::format(MemDisk::new(64 << 20), opts).unwrap()
    }

    #[test]
    fn aligned_write_read_round_trip() {
        let mut s = fresh(CosOptions::tiny());
        let o = oid(0, 1);
        s.submit(Transaction::new(
            o.group(),
            1,
            vec![Op::Create {
                oid: o,
                size: 64 << 10,
            }],
        ))
        .unwrap();
        s.submit(write_txn(2, o, 8192, vec![0xAB; 4096])).unwrap();
        assert_eq!(s.read(o, 8192, 4096).unwrap(), vec![0xAB; 4096]);
        assert_eq!(
            s.read(o, 0, 4096).unwrap(),
            vec![0u8; 4096],
            "untouched blocks read zero"
        );
    }

    #[test]
    fn create_after_sparse_bare_write_fills_holes() {
        // A bare write to a never-created object maps only the written
        // blocks; a later pre-allocating create (the recovery backfill path
        // sends Create+Write unconditionally) must fill the unmapped holes
        // rather than assume the extents form a contiguous prefix.
        let mut s = fresh(CosOptions::tiny());
        let o = oid(0, 40);
        s.submit(write_txn(1, o, 4096, vec![0x7E; 4096])).unwrap();
        s.submit(Transaction::new(
            o.group(),
            2,
            vec![Op::Create {
                oid: o,
                size: 16 << 10,
            }],
        ))
        .unwrap();
        assert_eq!(
            s.read(o, 4096, 4096).unwrap(),
            vec![0x7E; 4096],
            "pre-existing block survives the create"
        );
        s.submit(write_txn(3, o, 0, vec![0x11; 4096])).unwrap();
        s.submit(write_txn(4, o, 12288, vec![0x22; 4096])).unwrap();
        assert_eq!(s.read(o, 0, 4096).unwrap(), vec![0x11; 4096]);
        assert_eq!(s.read(o, 12288, 4096).unwrap(), vec![0x22; 4096]);
    }

    #[test]
    fn unaligned_write_preserves_neighbours() {
        let mut s = fresh(CosOptions::tiny());
        let o = oid(0, 2);
        s.submit(write_txn(1, o, 0, vec![1u8; 8192])).unwrap();
        s.submit(write_txn(2, o, 1000, vec![2u8; 5000])).unwrap();
        let got = s.read(o, 0, 8192).unwrap();
        assert_eq!(&got[..1000], &vec![1u8; 1000][..]);
        assert_eq!(&got[1000..6000], &vec![2u8; 5000][..]);
        assert_eq!(&got[6000..], &vec![1u8; 2192][..]);
    }

    #[test]
    fn preallocated_object_is_single_extent_and_stable_waf() {
        let mut s = fresh(CosOptions {
            metadata_cache: false,
            ..CosOptions::tiny()
        });
        let o = oid(0, 3);
        s.submit(Transaction::new(
            o.group(),
            1,
            vec![Op::Create {
                oid: o,
                size: 1 << 20,
            }],
        ))
        .unwrap();
        s.reset_stats();
        // Overwrite random 4 KiB blocks; with pre-allocation there is no
        // allocator churn, only the data write plus the onode write.
        for seq in 0..200u64 {
            let block = (seq * 37) % 256;
            s.submit(write_txn(seq + 2, o, block * 4096, vec![seq as u8; 4096]))
                .unwrap();
        }
        let st = s.stats();
        assert_eq!(st.user_bytes, 200 * 4096);
        assert_eq!(
            st.data_bytes,
            200 * 4096,
            "in-place: exactly one data write per write"
        );
        let waf = st.waf();
        assert!(waf > 1.0 && waf < 1.5, "pre-alloc no-cache waf = {waf}");
    }

    #[test]
    fn metadata_cache_pushes_waf_to_one() {
        let mut s = fresh(CosOptions {
            metadata_cache: true,
            meta_cache_entries: 4096,
            ..CosOptions::tiny()
        });
        let o = oid(0, 4);
        s.submit(Transaction::new(
            o.group(),
            1,
            vec![Op::Create {
                oid: o,
                size: 1 << 20,
            }],
        ))
        .unwrap();
        s.reset_stats();
        for seq in 0..200u64 {
            let block = (seq * 37) % 256;
            s.submit(write_txn(seq + 2, o, block * 4096, vec![seq as u8; 4096]))
                .unwrap();
        }
        let waf = s.stats().waf();
        assert!((waf - 1.0).abs() < 0.05, "metadata-cache waf = {waf}");
        assert!(s.nvm_meta_bytes() > 0, "onode updates went to NVM");
    }

    #[test]
    fn no_preallocation_costs_extra_metadata_writes() {
        let mut s = fresh(CosOptions {
            pre_allocate: false,
            metadata_cache: false,
            ..CosOptions::tiny()
        });
        let o = oid(0, 5);
        s.reset_stats();
        for seq in 0..50u64 {
            s.submit(write_txn(seq + 1, o, seq * 4096, vec![7u8; 4096]))
                .unwrap();
        }
        let st = s.stats();
        // Every write allocated fresh blocks: onode + free-tree info writes
        // on top of the data (§VI "Metadata Overhead").
        assert!(st.metadata_bytes > 50 * 512, "allocator metadata written");
        assert!(st.waf() > 1.1, "no-prealloc waf = {}", st.waf());
    }

    #[test]
    fn delete_then_maintenance_reclaims_blocks() {
        let mut s = fresh(CosOptions::tiny());
        let o = oid(0, 6);
        let free_before: u64 = s.free_blocks_per_partition().iter().sum();
        s.submit(Transaction::new(
            o.group(),
            1,
            vec![Op::Create {
                oid: o,
                size: 256 << 10,
            }],
        ))
        .unwrap();
        let free_mid: u64 = s.free_blocks_per_partition().iter().sum();
        assert!(free_mid < free_before);
        s.submit(Transaction::new(o.group(), 2, vec![Op::Delete { oid: o }]))
            .unwrap();
        // Delayed deallocation: blocks come back only after maintenance.
        let free_after_delete: u64 = s.free_blocks_per_partition().iter().sum();
        assert_eq!(free_after_delete, free_mid);
        assert!(s.needs_maintenance());
        s.maintenance();
        let free_final: u64 = s.free_blocks_per_partition().iter().sum();
        assert_eq!(free_final, free_before);
        assert_eq!(s.read(o, 0, 1), Err(StoreError::NotFound));
    }

    #[test]
    fn groups_shard_across_partitions() {
        let s = fresh(CosOptions {
            partitions: 2,
            ..CosOptions::tiny()
        });
        assert_eq!(s.partition_of(GroupId(0)), 0);
        assert_eq!(s.partition_of(GroupId(1)), 1);
        assert_eq!(s.partition_of(GroupId(2)), 0);
        assert_eq!(ObjectStore::partitions(&s), 2);
    }

    #[test]
    fn mount_recovers_objects_and_allocator() {
        let opts = CosOptions {
            metadata_cache: false,
            ..CosOptions::tiny()
        };
        let mut s = fresh(opts.clone());
        let a = oid(0, 10);
        let b = oid(1, 11);
        s.submit(Transaction::new(
            a.group(),
            1,
            vec![Op::Create {
                oid: a,
                size: 64 << 10,
            }],
        ))
        .unwrap();
        s.submit(write_txn(2, a, 4096, vec![0x5A; 4096])).unwrap();
        s.submit(write_txn(3, b, 0, vec![0x66; 100])).unwrap();
        s.submit(Transaction::new(
            a.group(),
            4,
            vec![Op::SetXattr {
                oid: a,
                key: "oi".into(),
                value: vec![9, 9],
            }],
        ))
        .unwrap();
        let free_before: Vec<u64> = s.free_blocks_per_partition();
        let dev = s.into_device();
        let mut s2 = CosObjectStore::mount(dev, opts).unwrap();
        assert_eq!(s2.read(a, 4096, 4096).unwrap(), vec![0x5A; 4096]);
        assert_eq!(s2.read(b, 0, 100).unwrap(), vec![0x66; 100]);
        assert_eq!(s2.stat(a).unwrap().size, 64 << 10);
        assert_eq!(
            s2.free_blocks_per_partition(),
            free_before,
            "allocator rebuilt exactly"
        );
    }

    #[test]
    fn mount_rejects_mismatched_geometry() {
        let s = fresh(CosOptions::tiny());
        let dev = s.into_device();
        let wrong = CosOptions {
            partitions: 4,
            ..CosOptions::tiny()
        };
        assert!(matches!(
            CosObjectStore::mount(dev, wrong),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn fragmented_object_survives_mount_via_spill() {
        // Force fragmentation: no pre-allocation, interleaved writes to two
        // objects so neither gets contiguous blocks.
        let opts = CosOptions {
            pre_allocate: false,
            metadata_cache: false,
            ..CosOptions::tiny()
        };
        let mut s = fresh(opts.clone());
        let a = oid(0, 20);
        let b = oid(0, 21);
        for i in 0..40u64 {
            s.submit(write_txn(i * 2 + 1, a, i * 8192, vec![1u8; 100]))
                .unwrap();
            s.submit(write_txn(i * 2 + 2, b, i * 8192, vec![2u8; 100]))
                .unwrap();
        }
        let dev = s.into_device();
        let mut s2 = CosObjectStore::mount(dev, opts).unwrap();
        for i in 0..40u64 {
            assert_eq!(
                s2.read(a, i * 8192, 100).unwrap(),
                vec![1u8; 100],
                "a block {i}"
            );
            assert_eq!(
                s2.read(b, i * 8192, 100).unwrap(),
                vec![2u8; 100],
                "b block {i}"
            );
        }
    }

    fn checked(mut base: CosOptions) -> CosOptions {
        base.checksums = true;
        base
    }

    #[test]
    fn checksummed_read_detects_bit_rot_and_heals_on_overwrite() {
        let mut s = fresh(checked(CosOptions::tiny()));
        let o = oid(0, 50);
        s.submit(write_txn(1, o, 0, vec![0x5A; 8192])).unwrap();
        assert_eq!(s.read(o, 0, 8192).unwrap(), vec![0x5A; 8192]);
        assert!(s.corrupt_data_bit(o, 1, 100, 3).unwrap());
        assert_eq!(s.read(o, 4096, 4096), Err(StoreError::ChecksumMismatch));
        // Sub-block reads of the rotted block fail too (verification is
        // block-granular), while the clean block still reads fine.
        assert_eq!(s.read(o, 5000, 16), Err(StoreError::ChecksumMismatch));
        assert_eq!(s.read(o, 0, 4096).unwrap(), vec![0x5A; 4096]);
        // A full-block overwrite (the repair path) restores integrity.
        s.submit(write_txn(2, o, 4096, vec![0x77; 4096])).unwrap();
        assert_eq!(s.read(o, 4096, 4096).unwrap(), vec![0x77; 4096]);
    }

    #[test]
    fn rmw_edge_read_refuses_to_launder_rot() {
        let mut s = fresh(checked(CosOptions::tiny()));
        let o = oid(0, 51);
        s.submit(write_txn(1, o, 0, vec![0x10; 4096])).unwrap();
        assert!(s.corrupt_data_bit(o, 0, 7, 0).unwrap());
        // An unaligned write must read-modify-write the rotted block; it
        // has to fail rather than fold rotted bytes under a fresh CRC.
        let err = s.submit(write_txn(2, o, 100, vec![0x20; 50]));
        assert_eq!(err, Err(StoreError::ChecksumMismatch));
    }

    #[test]
    fn checksums_persist_across_mount() {
        let opts = checked(CosOptions {
            metadata_cache: false,
            ..CosOptions::tiny()
        });
        let mut s = fresh(opts.clone());
        let o = oid(0, 52);
        s.submit(write_txn(1, o, 0, vec![0xAA; 12288])).unwrap();
        let dev = s.into_device();
        let mut s2 = CosObjectStore::mount(dev, opts.clone()).unwrap();
        assert_eq!(s2.read(o, 0, 12288).unwrap(), vec![0xAA; 12288]);
        assert!(s2.corrupt_data_bit(o, 2, 0, 7).unwrap());
        // Remount again: the checksum run read back from disk still
        // convicts the rotted block.
        let dev = s2.into_device();
        let mut s3 = CosObjectStore::mount(dev, opts).unwrap();
        assert_eq!(s3.read(o, 8192, 4096), Err(StoreError::ChecksumMismatch));
        assert_eq!(s3.read(o, 0, 8192).unwrap(), vec![0xAA; 8192]);
    }

    #[test]
    fn csum_digest_is_content_determined() {
        // Same final bytes via different write histories → same digest.
        let mut a = fresh(checked(CosOptions::tiny()));
        let mut b = fresh(checked(CosOptions::tiny()));
        let o = oid(0, 53);
        for s in [&mut a, &mut b] {
            s.submit(Transaction::new(
                o.group(),
                1,
                vec![Op::Create {
                    oid: o,
                    size: 16 << 10,
                }],
            ))
            .unwrap();
        }
        a.submit(write_txn(2, o, 0, vec![1; 4096])).unwrap();
        a.submit(write_txn(3, o, 8192, vec![2; 4096])).unwrap();
        // b writes in the opposite order, with an intermediate overwrite.
        b.submit(write_txn(2, o, 8192, vec![9; 4096])).unwrap();
        b.submit(write_txn(3, o, 8192, vec![2; 4096])).unwrap();
        b.submit(write_txn(4, o, 0, vec![1; 4096])).unwrap();
        assert_eq!(a.csum_digest(o), b.csum_digest(o));
        assert!(a.csum_digest(o).is_some());
        b.submit(write_txn(5, o, 0, vec![3; 4096])).unwrap();
        assert_ne!(a.csum_digest(o), b.csum_digest(o));
        // Digest never reads data, so rot is invisible to it (that is the
        // deep scrub's job).
        let before = a.csum_digest(o);
        a.corrupt_data_bit(o, 0, 0, 0).unwrap();
        assert_eq!(a.csum_digest(o), before);
    }

    #[test]
    fn meta_kv_lives_in_memory_not_on_device() {
        let mut s = fresh(CosOptions::tiny());
        let written_before = s.device().counters().bytes_written;
        s.submit(Transaction::new(
            GroupId(0),
            1,
            vec![Op::MetaPut {
                key: b"pglog.1".to_vec(),
                value: vec![3; 100],
            }],
        ))
        .unwrap();
        assert_eq!(s.get_meta(b"pglog.1"), Some(vec![3; 100]));
        assert_eq!(
            s.device().counters().bytes_written,
            written_before,
            "pg log rides the NVM op log, not the device"
        );
    }

    #[test]
    fn large_write_coalesces_into_few_device_ios() {
        let mut s = fresh(CosOptions::tiny());
        let o = oid(0, 30);
        s.submit(Transaction::new(
            o.group(),
            1,
            vec![Op::Create {
                oid: o,
                size: 1 << 20,
            }],
        ))
        .unwrap();
        s.take_trace();
        s.submit(write_txn(2, o, 0, vec![9u8; 128 << 10])).unwrap();
        let trace = s.take_trace();
        let data_writes: Vec<_> = trace
            .iter()
            .filter(|t| {
                matches!(t.kind, rablock_storage::TraceKind::Write)
                    && t.category == rablock_storage::IoCategory::Data
            })
            .collect();
        assert_eq!(
            data_writes.len(),
            1,
            "contiguous pre-allocated run = one 128 KiB write"
        );
        assert_eq!(data_writes[0].bytes, 128 << 10);
    }
}
