//! Free-extent B+tree, the allocator behind each sharded partition.
//!
//! The paper's CPU-efficient object store tracks free data blocks with a
//! B+tree per partition, like XFS (§IV-C "Freeblock Tree Info Area"). This
//! is that tree: keys are extent start blocks, values are extent lengths.
//! Internal nodes carry a *max-free-length* hint per child, so a first-fit
//! allocation descends directly to a leaf that can satisfy it in O(log n).
//!
//! Frees coalesce with both neighbours, and overlapping frees (double-free,
//! allocator corruption) are detected and rejected.

use rablock_storage::StoreError;

/// Maximum keys per node. Small enough to exercise splits in tests, large
/// enough that depth stays shallow for realistic partition sizes.
const ORDER: usize = 32;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        starts: Vec<u64>,
        lens: Vec<u64>,
    },
    Internal {
        /// `seps[i]` separates `children[i]` (keys < sep) from `children[i+1]`.
        seps: Vec<u64>,
        children: Vec<Node>,
        /// Largest free-extent length within each child's subtree.
        maxs: Vec<u64>,
    },
}

impl Node {
    fn max_len(&self) -> u64 {
        match self {
            Node::Leaf { lens, .. } => lens.iter().copied().max().unwrap_or(0),
            Node::Internal { maxs, .. } => maxs.iter().copied().max().unwrap_or(0),
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { starts, .. } => starts.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }
}

/// A B+tree of free extents `(start_block, length_in_blocks)`.
///
/// ```
/// use rablock_cos::ExtentBTree;
/// # fn main() -> Result<(), rablock_storage::StoreError> {
/// let mut tree = ExtentBTree::new_free(0, 1000); // blocks 0..1000 free
/// let a = tree.alloc(10)?;
/// let b = tree.alloc(10)?;
/// assert_ne!(a, b);
/// tree.free(a, 10)?;
/// assert_eq!(tree.free_blocks(), 990);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExtentBTree {
    root: Node,
    free_blocks: u64,
    extents: usize,
}

impl Default for ExtentBTree {
    fn default() -> Self {
        ExtentBTree::new()
    }
}

impl ExtentBTree {
    /// An empty tree (no free space).
    pub fn new() -> Self {
        ExtentBTree {
            root: Node::Leaf {
                starts: Vec::new(),
                lens: Vec::new(),
            },
            free_blocks: 0,
            extents: 0,
        }
    }

    /// A tree with one free extent `[start, start+len)`.
    pub fn new_free(start: u64, len: u64) -> Self {
        let mut t = ExtentBTree::new();
        if len > 0 {
            t.insert(start, len).expect("fresh tree cannot collide");
        }
        t
    }

    /// Total free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Number of distinct free extents (fragmentation indicator).
    pub fn extent_count(&self) -> usize {
        self.extents
    }

    /// Largest allocatable contiguous run.
    pub fn largest_extent(&self) -> u64 {
        self.root.max_len()
    }

    /// Allocates `len` contiguous blocks, first-fit; returns the start block.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] if no single extent is large enough.
    pub fn alloc(&mut self, len: u64) -> Result<u64, StoreError> {
        if len == 0 {
            return Err(StoreError::InvalidArgument("zero-length allocation".into()));
        }
        if self.root.max_len() < len {
            return Err(StoreError::NoSpace);
        }
        let (start, consumed_whole) = Self::alloc_in(&mut self.root, len);
        self.free_blocks -= len;
        if consumed_whole {
            self.extents -= 1;
        }
        Ok(start)
    }

    fn alloc_in(node: &mut Node, want: u64) -> (u64, bool) {
        match node {
            Node::Leaf { starts, lens } => {
                let j = lens
                    .iter()
                    .position(|&l| l >= want)
                    .expect("max hint guaranteed a fit");
                let start = starts[j];
                let consumed_whole = lens[j] == want;
                if consumed_whole {
                    starts.remove(j);
                    lens.remove(j);
                } else {
                    starts[j] += want;
                    lens[j] -= want;
                }
                (start, consumed_whole)
            }
            Node::Internal { children, maxs, .. } => {
                let i = maxs
                    .iter()
                    .position(|&m| m >= want)
                    .expect("max hint guaranteed a fit");
                let out = Self::alloc_in(&mut children[i], want);
                maxs[i] = children[i].max_len();
                out
            }
        }
    }

    /// Claims the specific range `[start, start+len)` from the free pool
    /// (mount-time rebuild: carving out extents named by live onodes).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if any part of the range is not free — two
    /// onodes claiming the same blocks is allocator corruption.
    pub fn alloc_specific(&mut self, start: u64, len: u64) -> Result<(), StoreError> {
        if len == 0 {
            return Err(StoreError::InvalidArgument("zero-length allocation".into()));
        }
        let (es, el) = self.floor(start).ok_or_else(|| overlap_err(start, len))?;
        if es > start || es + el < start + len {
            return Err(overlap_err(start, len));
        }
        self.remove(es).expect("floor extent exists");
        if es < start {
            self.insert(es, start - es)?;
        }
        if es + el > start + len {
            self.insert(start + len, es + el - (start + len))?;
        }
        Ok(())
    }

    /// Returns `[start, start+len)` to the free pool, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if the range overlaps an already-free extent
    /// (double free).
    pub fn free(&mut self, mut start: u64, mut len: u64) -> Result<(), StoreError> {
        if len == 0 {
            return Err(StoreError::InvalidArgument("zero-length free".into()));
        }
        if let Some((ps, pl)) = self.floor(start) {
            if ps + pl > start {
                return Err(StoreError::Corrupt(format!(
                    "double free: [{start},{}) overlaps free extent [{ps},{})",
                    start + len,
                    ps + pl
                )));
            }
            if ps + pl == start {
                self.remove(ps).expect("floor extent exists");
                start = ps;
                len += pl;
            }
        }
        if let Some((ns, nl)) = self.ceiling(start + 1) {
            if ns < start + len {
                return Err(StoreError::Corrupt(format!(
                    "double free: [{start},{}) overlaps free extent [{ns},{})",
                    start + len,
                    ns + nl
                )));
            }
            if start + len == ns {
                self.remove(ns).expect("ceiling extent exists");
                len += nl;
            }
        }
        self.insert(start, len)
    }

    /// Iterates free extents in start order.
    pub fn iter(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.extents);
        Self::collect(&self.root, &mut out);
        out
    }

    /// Rebuilds a tree from `(start, len)` extents (checkpoint load).
    ///
    /// # Errors
    ///
    /// Propagates overlap errors from malformed checkpoints.
    pub fn from_extents(extents: impl IntoIterator<Item = (u64, u64)>) -> Result<Self, StoreError> {
        let mut t = ExtentBTree::new();
        for (s, l) in extents {
            t.insert(s, l)?;
        }
        Ok(t)
    }

    fn collect(node: &Node, out: &mut Vec<(u64, u64)>) {
        match node {
            Node::Leaf { starts, lens } => {
                out.extend(starts.iter().copied().zip(lens.iter().copied()));
            }
            Node::Internal { children, .. } => {
                for c in children {
                    Self::collect(c, out);
                }
            }
        }
    }

    /// Test-only probe of [`ExtentBTree::floor`].
    #[doc(hidden)]
    pub fn debug_floor(&self, key: u64) -> Option<(u64, u64)> {
        self.floor(key)
    }

    /// Test-only probe of [`ExtentBTree::ceiling`].
    #[doc(hidden)]
    pub fn debug_ceiling(&self, key: u64) -> Option<(u64, u64)> {
        self.ceiling(key)
    }

    /// Greatest `(start, len)` with `start <= key`.
    fn floor(&self, key: u64) -> Option<(u64, u64)> {
        let mut node = &self.root;
        let mut best: Option<(u64, u64)> = None;
        loop {
            match node {
                Node::Leaf { starts, lens } => {
                    let idx = starts.partition_point(|&s| s <= key);
                    if idx > 0 {
                        best = Some((starts[idx - 1], lens[idx - 1]));
                    }
                    return best;
                }
                Node::Internal { seps, children, .. } => {
                    let i = seps.partition_point(|&s| s <= key);
                    // A smaller-keyed sibling may hold the floor; remember
                    // the rightmost extent of the child to the left.
                    if i > 0 {
                        if let Some(e) = Self::rightmost(&children[i - 1]) {
                            if e.0 <= key {
                                best = Some(e);
                            }
                        }
                    }
                    node = &children[i];
                }
            }
        }
    }

    /// Smallest `(start, len)` with `start >= key`.
    fn ceiling(&self, key: u64) -> Option<(u64, u64)> {
        let mut node = &self.root;
        let mut best: Option<(u64, u64)> = None;
        loop {
            match node {
                Node::Leaf { starts, lens } => {
                    let idx = starts.partition_point(|&s| s < key);
                    if idx < starts.len() {
                        best = Some((starts[idx], lens[idx]));
                    }
                    return best;
                }
                Node::Internal { seps, children, .. } => {
                    let i = seps.partition_point(|&s| s <= key);
                    if i + 1 < children.len() {
                        if let Some(e) = Self::leftmost(&children[i + 1]) {
                            best = Some(e);
                        }
                    }
                    node = &children[i];
                }
            }
        }
    }

    fn leftmost(node: &Node) -> Option<(u64, u64)> {
        match node {
            Node::Leaf { starts, lens } => starts.first().map(|&s| (s, lens[0])),
            Node::Internal { children, .. } => children.iter().find_map(Self::leftmost),
        }
    }

    fn rightmost(node: &Node) -> Option<(u64, u64)> {
        match node {
            Node::Leaf { starts, lens } => starts.last().map(|&s| (s, *lens.last().unwrap())),
            Node::Internal { children, .. } => children.iter().rev().find_map(Self::rightmost),
        }
    }

    fn insert(&mut self, start: u64, len: u64) -> Result<(), StoreError> {
        if let Some(split) = Self::insert_in(&mut self.root, start, len)? {
            let (sep, right) = split;
            let left = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    starts: vec![],
                    lens: vec![],
                },
            );
            let maxs = vec![left.max_len(), right.max_len()];
            self.root = Node::Internal {
                seps: vec![sep],
                children: vec![left, right],
                maxs,
            };
        }
        self.free_blocks += len;
        self.extents += 1;
        Ok(())
    }

    fn insert_in(node: &mut Node, start: u64, len: u64) -> Result<Option<(u64, Node)>, StoreError> {
        match node {
            Node::Leaf { starts, lens } => {
                let idx = starts.partition_point(|&s| s < start);
                if starts.get(idx) == Some(&start) {
                    return Err(StoreError::Corrupt(format!(
                        "duplicate free extent at {start}"
                    )));
                }
                starts.insert(idx, start);
                lens.insert(idx, len);
                if starts.len() <= ORDER {
                    return Ok(None);
                }
                let mid = starts.len() / 2;
                let right_starts = starts.split_off(mid);
                let right_lens = lens.split_off(mid);
                let sep = right_starts[0];
                Ok(Some((
                    sep,
                    Node::Leaf {
                        starts: right_starts,
                        lens: right_lens,
                    },
                )))
            }
            Node::Internal {
                seps,
                children,
                maxs,
            } => {
                let i = seps.partition_point(|&s| s <= start);
                let split = Self::insert_in(&mut children[i], start, len)?;
                maxs[i] = children[i].max_len();
                if let Some((sep, right)) = split {
                    let rmax = right.max_len();
                    seps.insert(i, sep);
                    children.insert(i + 1, right);
                    maxs.insert(i + 1, rmax);
                    maxs[i] = children[i].max_len();
                    if children.len() > ORDER {
                        let mid = children.len() / 2;
                        let right_children = children.split_off(mid);
                        let right_seps = seps.split_off(mid);
                        let right_maxs = maxs.split_off(mid);
                        // seps now has one extra separator at the end that
                        // becomes the promoted key.
                        let promoted = seps.pop().expect("separator to promote");
                        let right_node = Node::Internal {
                            seps: right_seps,
                            children: right_children,
                            maxs: right_maxs,
                        };
                        return Ok(Some((promoted, right_node)));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Removes the extent starting exactly at `start`; returns its length.
    fn remove(&mut self, start: u64) -> Option<u64> {
        let removed = Self::remove_in(&mut self.root, start)?;
        self.free_blocks -= removed;
        self.extents -= 1;
        // Shrink a trivial root chain (no rebalancing below the root; the
        // tree tolerates underfull nodes, like many production allocators).
        while let Node::Internal { children, .. } = &mut self.root {
            match children.len() {
                0 => {
                    self.root = Node::Leaf {
                        starts: Vec::new(),
                        lens: Vec::new(),
                    };
                }
                1 => {
                    let only = children.pop().expect("one child");
                    self.root = only;
                }
                _ => break,
            }
        }
        Some(removed)
    }

    fn remove_in(node: &mut Node, start: u64) -> Option<u64> {
        match node {
            Node::Leaf { starts, lens } => {
                let idx = starts.binary_search(&start).ok()?;
                starts.remove(idx);
                Some(lens.remove(idx))
            }
            Node::Internal {
                seps,
                children,
                maxs,
            } => {
                let i = seps.partition_point(|&s| s <= start);
                let removed = Self::remove_in(&mut children[i], start)?;
                maxs[i] = children[i].max_len();
                // Drop empty children so queries never dead-end in an empty
                // subtree; an internal node emptied this way is pruned by
                // its own parent on the way back up.
                if children[i].len() == 0 {
                    children.remove(i);
                    maxs.remove(i);
                    if !seps.is_empty() {
                        if i < seps.len() {
                            seps.remove(i);
                        } else {
                            seps.pop();
                        }
                    }
                }
                Some(removed)
            }
        }
    }

    /// Internal invariant check used by tests: keys sorted, extents disjoint,
    /// max hints correct, counters accurate.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let extents = self.iter();
        assert!(
            extents.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0),
            "extents out of order or overlapping: {extents:?}"
        );
        // Adjacent extents must have been coalesced by free().
        let total: u64 = extents.iter().map(|e| e.1).sum();
        assert_eq!(total, self.free_blocks, "free-block counter drift");
        assert_eq!(extents.len(), self.extents, "extent counter drift");
        Self::check_node(&self.root);
    }

    fn check_node(node: &Node) {
        if let Node::Internal {
            seps,
            children,
            maxs,
        } = node
        {
            assert_eq!(children.len(), seps.len() + 1);
            assert_eq!(children.len(), maxs.len());
            for (i, c) in children.iter().enumerate() {
                assert_eq!(maxs[i], c.max_len(), "stale max hint");
                Self::check_node(c);
            }
        }
    }
}

fn overlap_err(start: u64, len: u64) -> StoreError {
    StoreError::Corrupt(format!(
        "range [{start},{}) is not entirely free",
        start + len
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_round_trip() {
        let mut t = ExtentBTree::new_free(0, 100);
        let a = t.alloc(30).unwrap();
        assert_eq!(a, 0);
        assert_eq!(t.free_blocks(), 70);
        t.free(a, 30).unwrap();
        assert_eq!(t.free_blocks(), 100);
        assert_eq!(t.extent_count(), 1, "coalesced back to one extent");
    }

    #[test]
    fn exhaustion_is_no_space() {
        let mut t = ExtentBTree::new_free(0, 10);
        assert!(t.alloc(11).is_err());
        t.alloc(10).unwrap();
        assert_eq!(t.alloc(1), Err(StoreError::NoSpace));
    }

    #[test]
    fn fragmentation_respects_first_fit() {
        let mut t = ExtentBTree::new_free(0, 100);
        let a = t.alloc(10).unwrap(); // [0,10)
        let _b = t.alloc(10).unwrap(); // [10,20)
        let c = t.alloc(10).unwrap(); // [20,30)
        t.free(a, 10).unwrap();
        t.free(c, 10).unwrap();
        // First fit picks the lowest suitable hole.
        assert_eq!(t.alloc(10).unwrap(), 0);
        assert_eq!(t.alloc(10).unwrap(), 20);
    }

    #[test]
    fn coalescing_merges_both_sides() {
        let mut t = ExtentBTree::new_free(0, 100);
        let a = t.alloc(30).unwrap();
        let b = t.alloc(30).unwrap();
        let c = t.alloc(30).unwrap();
        t.free(a, 30).unwrap(); // free: [0,30) and the tail [90,100)
        t.free(c, 30).unwrap(); // c merges with the tail: [60,100)
        assert_eq!(t.extent_count(), 2);
        t.free(b, 30).unwrap();
        assert_eq!(t.extent_count(), 1);
        assert_eq!(t.free_blocks(), 100);
        t.check_invariants();
    }

    #[test]
    fn double_free_detected() {
        let mut t = ExtentBTree::new_free(0, 100);
        let a = t.alloc(10).unwrap();
        t.free(a, 10).unwrap();
        assert!(matches!(t.free(a, 10), Err(StoreError::Corrupt(_))));
        assert!(matches!(t.free(50, 10), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn deep_tree_from_many_fragments() {
        // Insert thousands of disjoint single-block extents with gaps so no
        // coalescing happens: forces multiple levels of splits.
        let mut t = ExtentBTree::new();
        for i in 0..5_000u64 {
            t.free(i * 2, 1).unwrap();
        }
        t.check_invariants();
        assert_eq!(t.free_blocks(), 5_000);
        assert_eq!(t.extent_count(), 5_000);
        assert_eq!(t.largest_extent(), 1);
        // Filling the gaps collapses everything into one run.
        for i in 0..4_999u64 {
            t.free(i * 2 + 1, 1).unwrap();
        }
        assert_eq!(t.extent_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn serialize_round_trip() {
        let mut t = ExtentBTree::new_free(0, 1000);
        for want in [7u64, 13, 100, 1, 64] {
            t.alloc(want).unwrap();
        }
        t.free(7, 3).unwrap();
        let extents = t.iter();
        let t2 = ExtentBTree::from_extents(extents.clone()).unwrap();
        assert_eq!(t2.iter(), extents);
        assert_eq!(t2.free_blocks(), t.free_blocks());
        t2.check_invariants();
    }

    proptest! {
        /// The tree must agree with a trivial model (sorted map of extents)
        /// under arbitrary interleavings of alloc and free.
        #[test]
        fn matches_model(ops in proptest::collection::vec((0u8..2, 1u64..64), 1..400)) {
            let total = 1 << 16;
            let mut tree = ExtentBTree::new_free(0, total);
            let mut allocated: Vec<(u64, u64)> = Vec::new();
            for (kind, size) in ops {
                if kind == 0 || allocated.is_empty() {
                    match tree.alloc(size) {
                        Ok(start) => {
                            // No overlap with anything already allocated.
                            for &(s, l) in &allocated {
                                prop_assert!(start + size <= s || s + l <= start,
                                    "overlapping allocation");
                            }
                            allocated.push((start, size));
                        }
                        Err(StoreError::NoSpace) => {
                            prop_assert!(tree.largest_extent() < size);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                } else {
                    let (s, l) = allocated.swap_remove(0);
                    tree.free(s, l).unwrap();
                }
                let in_use: u64 = allocated.iter().map(|a| a.1).sum();
                prop_assert_eq!(tree.free_blocks() + in_use, total);
            }
            tree.check_invariants();
        }
    }
}
