//! Reference-counted immutable payload buffers.
//!
//! Every client write's data travels a long way: client → primary OSD →
//! per-replica fan-out → operation-log staging → backend submit, plus the
//! retry and dedup-re-ack side paths. With `Vec<u8>` payloads each hop
//! deep-copies the bytes; [`Payload`] makes the clone at every hop a
//! refcount bump on one shared allocation instead. Payloads are immutable
//! by construction — there is no `&mut [u8]` access — so sharing across
//! the replication fan-out and the pending-op retry table is safe.
//!
//! [`Payload::slice`] gives a zero-copy sub-range view (the operation log
//! serves reads of a suffix of a logged write this way).

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// An immutable, cheaply-cloneable, slice-able byte buffer.
///
/// Cloning bumps a refcount; slicing shares the same allocation. Equality
/// and hashing are by byte content, so types embedding a `Payload` can keep
/// their derived `PartialEq`/`Eq` semantics.
#[derive(Clone)]
pub struct Payload {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
    /// Lazily computed checksum of the *full* backing buffer, shared by all
    /// clones. Lets hot paths that checksum the same (interned, refcounted)
    /// buffer over and over pay the scan once. See
    /// [`Payload::cached_full_checksum`].
    checksum: Arc<OnceLock<u32>>,
}

impl Payload {
    /// An empty payload (no allocation is shared, but none is needed).
    pub fn empty() -> Payload {
        Payload {
            buf: Arc::from([] as [u8; 0]),
            off: 0,
            len: 0,
            checksum: Arc::new(OnceLock::new()),
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// A zero-copy sub-range view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds this view's length.
    pub fn slice(&self, offset: usize, len: usize) -> Payload {
        assert!(
            offset + len <= self.len,
            "slice [{offset}, +{len}) out of payload of {} bytes",
            self.len
        );
        Payload {
            buf: Arc::clone(&self.buf),
            off: self.off + offset,
            len,
            checksum: Arc::clone(&self.checksum),
        }
    }

    /// The checksum of this view under `compute`, memoized when the view
    /// covers its whole backing buffer (the hot case: replication fans the
    /// same full-buffer payload to every replica, and workload generators
    /// intern their fill patterns). Partial views are computed directly —
    /// the memo slot belongs to the full buffer's bytes.
    ///
    /// The caller must pass the *same* pure `compute` function every time;
    /// the first one wins and later calls return its memoized result.
    pub fn cached_full_checksum(&self, compute: impl Fn(&[u8]) -> u32) -> u32 {
        if self.off == 0 && self.len == self.buf.len() {
            *self.checksum.get_or_init(|| compute(&self.buf))
        } else {
            compute(self.as_slice())
        }
    }

    /// Copies the view out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        let len = v.len();
        Payload {
            buf: Arc::from(v),
            off: 0,
            len,
            checksum: Arc::new(OnceLock::new()),
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Payload {
        Payload {
            buf: Arc::from(s),
            off: 0,
            len: s.len(),
            checksum: Arc::new(OnceLock::new()),
        }
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes", self.len)?;
        if let Some(&b) = self.as_slice().first() {
            if self.as_slice().iter().all(|&x| x == b) {
                write!(f, ", fill {b:#04x}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let p: Payload = vec![7u8; 4096].into();
        let q = p.clone();
        assert_eq!(p, q);
        assert!(std::ptr::eq(p.as_slice().as_ptr(), q.as_slice().as_ptr()));
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let p: Payload = (0u8..100).collect::<Vec<u8>>().into();
        let s = p.slice(10, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.as_slice(), &p.as_slice()[10..30]);
        assert!(std::ptr::eq(
            s.as_slice().as_ptr(),
            p.as_slice()[10..].as_ptr()
        ));
        let nested = s.slice(5, 5);
        assert_eq!(nested.as_slice(), &p.as_slice()[15..20]);
    }

    #[test]
    #[should_panic(expected = "out of payload")]
    fn slice_out_of_range_panics() {
        let p: Payload = vec![0u8; 8].into();
        let _ = p.slice(4, 8);
    }

    #[test]
    fn equality_is_by_content() {
        let a: Payload = vec![1, 2, 3].into();
        let b = Payload::from(vec![0, 1, 2, 3]).slice(1, 3);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_default() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::default().len(), 0);
        assert_eq!(Payload::default().to_vec(), Vec::<u8>::new());
    }
}
