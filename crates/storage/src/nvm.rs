//! Byte-addressable non-volatile memory region.
//!
//! The paper logs incoming operations in NVM (Intel Optane or battery-backed
//! DRAM; the authors emulate it with an 8 GB ramdisk per node). [`NvmRegion`]
//! is that emulation one level down: a fixed-size, byte-addressable buffer
//! whose writes are durable the moment they complete (battery-backed
//! semantics), with traffic counters so NVM consumption can be reported.

use crate::error::StoreError;

/// A byte-addressable persistent memory region.
///
/// Unlike a [`BlockDevice`](crate::BlockDevice), an `NvmRegion` has no flush
/// barrier: a completed store is durable (the paper's NVM is battery-backed
/// or Optane behind `clwb`; its ramdisk emulation makes the same assumption).
///
/// ```
/// use rablock_storage::NvmRegion;
/// # fn main() -> Result<(), rablock_storage::StoreError> {
/// let mut nvm = NvmRegion::new(8 << 10);
/// nvm.write(128, b"op-log entry")?;
/// assert_eq!(nvm.read(128, 12)?, b"op-log entry");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NvmRegion {
    data: Vec<u8>,
    bytes_written: u64,
    bytes_read: u64,
}

impl NvmRegion {
    /// Creates a zero-filled region of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        NvmRegion {
            data: vec![0; capacity as usize],
            bytes_written: 0,
            bytes_read: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), StoreError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.data.len() as u64)
        {
            return Err(StoreError::OutOfBounds {
                offset,
                len,
                capacity: self.data.len() as u64,
            });
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::OutOfBounds`] if the range exceeds capacity.
    pub fn read(&mut self, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.check(offset, len)?;
        self.bytes_read += len;
        let start = offset as usize;
        Ok(self.data[start..start + len as usize].to_vec())
    }

    /// Reads into a caller-provided buffer (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::OutOfBounds`] if the range exceeds capacity.
    pub fn read_into(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        self.check(offset, buf.len() as u64)?;
        self.bytes_read += buf.len() as u64;
        let start = offset as usize;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        Ok(())
    }

    /// Durably writes `data` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::OutOfBounds`] if the range exceeds capacity.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        self.check(offset, data.len() as u64)?;
        let start = offset as usize;
        self.data[start..start + data.len()].copy_from_slice(data);
        self.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Total bytes written since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Simulates a node reboot: contents survive (non-volatile), counters
    /// reset. Returns the preserved image for recovery-path tests.
    pub fn reboot(&mut self) {
        self.bytes_written = 0;
        self.bytes_read = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_immediately_readable() {
        let mut nvm = NvmRegion::new(1024);
        nvm.write(100, b"hello").unwrap();
        assert_eq!(nvm.read(100, 5).unwrap(), b"hello");
    }

    #[test]
    fn contents_survive_reboot_counters_do_not() {
        let mut nvm = NvmRegion::new(1024);
        nvm.write(0, b"persist").unwrap();
        nvm.reboot();
        assert_eq!(nvm.read(0, 7).unwrap(), b"persist");
        assert_eq!(nvm.bytes_written(), 0);
        assert_eq!(nvm.bytes_read(), 7);
    }

    #[test]
    fn bounds_checked() {
        let mut nvm = NvmRegion::new(10);
        assert!(nvm.write(8, b"toolong").is_err());
        assert!(nvm.read(9, 2).is_err());
        assert!(nvm.read(u64::MAX, 1).is_err());
    }

    #[test]
    fn read_into_avoids_allocation() {
        let mut nvm = NvmRegion::new(64);
        nvm.write(10, &[7; 8]).unwrap();
        let mut buf = [0u8; 8];
        nvm.read_into(10, &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
    }
}
