//! Crash-injection block device for consistency testing.
//!
//! [`CrashDisk`] distinguishes the *volatile* view (what the running store
//! reads back — includes every completed write) from the *persistent* image
//! (what survives power loss — only writes covered by a flush barrier).
//! `crash_with(...)` simulates power loss: the volatile view is reset to the
//! persistent image plus a caller-chosen prefix of the unflushed writes,
//! optionally with the last surviving write torn in half — the classic
//! failure modes a write-ahead log must tolerate.

use crate::blockdev::{BlockDevice, DevCounters, MemDisk};
use crate::error::StoreError;

/// How much of the unflushed write stream survives a simulated crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Number of unflushed writes (in submission order) that reached the
    /// media before power loss. Clamped to the pending count.
    pub surviving_writes: usize,
    /// If true, the last surviving write is torn: only its first half lands.
    pub tear_last: bool,
    /// If true (and `tear_last`), the landed half of the torn write is also
    /// bit-flipped mid-way — the media committed garbage, not just a clean
    /// prefix. Recovery must catch this by checksum, not by length.
    pub corrupt_tear: bool,
}

impl CrashPlan {
    /// Everything unflushed is lost (the harshest plan a flush-correct store
    /// must survive).
    pub fn lose_all() -> Self {
        CrashPlan {
            surviving_writes: 0,
            tear_last: false,
            corrupt_tear: false,
        }
    }

    /// A prefix of `n` unflushed writes survives.
    pub fn keep(n: usize) -> Self {
        CrashPlan {
            surviving_writes: n,
            tear_last: false,
            corrupt_tear: false,
        }
    }

    /// A prefix of `n` unflushed writes survives and the `n`-th is torn.
    pub fn keep_torn(n: usize) -> Self {
        CrashPlan {
            surviving_writes: n,
            tear_last: true,
            corrupt_tear: false,
        }
    }

    /// A prefix of `n` unflushed writes survives; the `n`-th is torn *and*
    /// its surviving half carries a bit flip.
    pub fn keep_torn_corrupt(n: usize) -> Self {
        CrashPlan {
            surviving_writes: n,
            tear_last: true,
            corrupt_tear: true,
        }
    }
}

/// A block device that tracks unflushed writes and can simulate power loss.
///
/// ```
/// use rablock_storage::{BlockDevice, CrashDisk, CrashPlan};
/// # fn main() -> Result<(), rablock_storage::StoreError> {
/// let mut disk = CrashDisk::new(4096);
/// disk.write_at(0, b"durable")?;
/// disk.flush()?;
/// disk.write_at(0, b"doomed!")?;
/// disk.crash_with(CrashPlan::lose_all());
/// let mut buf = [0u8; 7];
/// disk.read_at(0, &mut buf)?;
/// assert_eq!(&buf, b"durable");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrashDisk {
    /// What a reader sees now (all completed writes applied).
    volatile: MemDisk,
    /// What survives power loss (writes up to the last flush).
    persistent: Vec<u8>,
    /// Writes since the last flush, in submission order.
    pending: Vec<(u64, Vec<u8>)>,
    crashes: u64,
}

impl CrashDisk {
    /// Creates a zero-filled crash-injectable device.
    pub fn new(capacity: u64) -> Self {
        CrashDisk {
            volatile: MemDisk::new(capacity),
            persistent: vec![0; capacity as usize],
            pending: Vec::new(),
            crashes: 0,
        }
    }

    /// Number of writes not yet covered by a flush.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Number of crashes injected so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Simulates power loss per `plan`, resetting the volatile view to what
    /// the media would actually hold. Pending writes are discarded.
    pub fn crash_with(&mut self, plan: CrashPlan) {
        let keep = plan.surviving_writes.min(self.pending.len());
        for (i, (offset, data)) in self.pending.iter().take(keep).enumerate() {
            let mut torn_half;
            let effective: &[u8] = if plan.tear_last && i + 1 == keep {
                torn_half = data[..data.len() / 2].to_vec();
                if plan.corrupt_tear && !torn_half.is_empty() {
                    let mid = torn_half.len() / 2;
                    torn_half[mid] ^= 0x10;
                }
                &torn_half
            } else {
                data
            };
            let start = *offset as usize;
            self.persistent[start..start + effective.len()].copy_from_slice(effective);
        }
        self.pending.clear();
        let counters_before = self.volatile.counters();
        self.volatile = MemDisk::new(self.persistent.len() as u64);
        // Restore the media image into the fresh volatile view.
        self.volatile
            .write_at(0, &self.persistent.clone())
            .expect("image fits");
        self.volatile.reset_counters();
        // Keep cumulative counters monotonic across the crash.
        let _ = counters_before;
        self.crashes += 1;
    }
}

impl BlockDevice for CrashDisk {
    fn capacity(&self) -> u64 {
        self.volatile.capacity()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        self.volatile.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        self.volatile.write_at(offset, data)?;
        self.pending.push((offset, data.to_vec()));
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        for (offset, data) in self.pending.drain(..) {
            let start = offset as usize;
            self.persistent[start..start + data.len()].copy_from_slice(&data);
        }
        self.volatile.flush()
    }

    fn counters(&self) -> DevCounters {
        self.volatile.counters()
    }

    fn reset_counters(&mut self) {
        self.volatile.reset_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(d: &mut CrashDisk, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0; len];
        d.read_at(offset, &mut buf).unwrap();
        buf
    }

    #[test]
    fn flushed_writes_survive_crash() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"abc").unwrap();
        d.flush().unwrap();
        d.crash_with(CrashPlan::lose_all());
        assert_eq!(read(&mut d, 0, 3), b"abc");
    }

    #[test]
    fn unflushed_writes_vanish() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"abc").unwrap();
        d.crash_with(CrashPlan::lose_all());
        assert_eq!(read(&mut d, 0, 3), vec![0, 0, 0]);
        assert_eq!(d.crashes(), 1);
    }

    #[test]
    fn prefix_of_pending_survives_in_order() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"a").unwrap();
        d.write_at(1, b"b").unwrap();
        d.write_at(2, b"c").unwrap();
        d.crash_with(CrashPlan::keep(2));
        assert_eq!(read(&mut d, 0, 3), b"ab\0");
    }

    #[test]
    fn torn_write_applies_half() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"ABCDEFGH").unwrap();
        d.crash_with(CrashPlan::keep_torn(1));
        assert_eq!(read(&mut d, 0, 8), b"ABCD\0\0\0\0");
    }

    #[test]
    fn corrupt_tear_flips_a_bit_in_the_surviving_half() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"ABCDEFGH").unwrap();
        d.crash_with(CrashPlan::keep_torn_corrupt(1));
        let got = read(&mut d, 0, 8);
        // First half landed but one byte is damaged; second half never landed.
        assert_eq!(&got[4..], &[0, 0, 0, 0]);
        assert_ne!(&got[..4], b"ABCD", "bit flip damaged the landed half");
        let diff: usize = got[..4].iter().zip(b"ABCD").filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1, "exactly one byte differs");
    }

    #[test]
    fn corrupt_tear_without_tear_flag_is_clean() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"ABCDEFGH").unwrap();
        let plan = CrashPlan {
            surviving_writes: 1,
            tear_last: false,
            corrupt_tear: true,
        };
        d.crash_with(plan);
        assert_eq!(
            read(&mut d, 0, 8),
            b"ABCDEFGH",
            "corruption only applies to a torn write"
        );
    }

    #[test]
    fn volatile_view_sees_pending_before_crash() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"xyz").unwrap();
        assert_eq!(read(&mut d, 0, 3), b"xyz");
        assert_eq!(d.pending_writes(), 1);
    }

    #[test]
    fn overlapping_pending_writes_replay_in_order() {
        let mut d = CrashDisk::new(64);
        d.write_at(0, b"1111").unwrap();
        d.write_at(2, b"22").unwrap();
        d.crash_with(CrashPlan::keep(2));
        assert_eq!(read(&mut d, 0, 4), b"1122");
    }
}
