//! The backend object-store contract shared by all backends.
//!
//! An OSD daemon stores object data through an [`ObjectStore`]: BlueStore in
//! stock Ceph (reproduced by `rablock-lsm`), and the paper's CPU-efficient
//! object store (reproduced by `rablock-cos`). The trait is deliberately
//! transactional — an OSD submits a [`Transaction`] bundling the data write
//! with the metadata writes Ceph issues per request (`object_info_t`,
//! `snapset`, pg log), because that bundling is exactly where the two
//! backends diverge in CPU cost and write amplification.

use std::fmt;

use crate::error::StoreError;
use crate::payload::Payload;

/// Identifier of an object within the cluster.
///
/// Layout mirrors the paper (§IV-C-1): the high bits carry the logical-group
/// id (used to pick the sharded partition); the low bits identify the object
/// within the group.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Builds an id from a logical-group id (high 16 bits) and an
    /// object index (low 48 bits).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 48 bits.
    pub fn new(group: GroupId, index: u64) -> Self {
        assert!(index < (1 << 48), "object index exceeds 48 bits");
        ObjectId(((group.0 as u64) << 48) | index)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The logical group this object belongs to (high bits of the id).
    pub const fn group(self) -> GroupId {
        GroupId((self.0 >> 48) as u32)
    }

    /// The object index within its group (low bits of the id).
    pub const fn index(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId(g{}:{})", self.group().0, self.index())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}:{}", self.group().0, self.index())
    }
}

/// A logical group of objects (Ceph's placement group).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Per-object metadata visible through [`ObjectStore::stat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Current object size in bytes.
    pub size: u64,
    /// Monotonic version, bumped on every mutating op.
    pub version: u64,
    /// Logical modification "time" (the submitting transaction's sequence).
    pub mtime: u64,
}

/// One mutation inside a [`Transaction`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Pre-allocates an object of fixed `size` (the paper's pre-allocation
    /// technique: RBD images allocate all their objects at creation).
    Create {
        /// Target object.
        oid: ObjectId,
        /// Fixed object size in bytes.
        size: u64,
    },
    /// Overwrites `data.len()` bytes at `offset` within the object.
    Write {
        /// Target object.
        oid: ObjectId,
        /// Byte offset within the object.
        offset: u64,
        /// Payload (refcounted: cloning the op shares the bytes).
        data: Payload,
    },
    /// Sets an extended attribute on the object.
    SetXattr {
        /// Target object.
        oid: ObjectId,
        /// Attribute name.
        key: String,
        /// Attribute value.
        value: Vec<u8>,
    },
    /// Writes a store-level key/value record (Ceph's `object_info_t`,
    /// `snapset`, pg-log entries ride on this).
    MetaPut {
        /// Record key.
        key: Vec<u8>,
        /// Record value.
        value: Vec<u8>,
    },
    /// Deletes a store-level key/value record.
    MetaDelete {
        /// Record key.
        key: Vec<u8>,
    },
    /// Deletes an object (backends may defer the actual deallocation).
    Delete {
        /// Target object.
        oid: ObjectId,
    },
}

impl Op {
    /// Bytes of user payload carried by this op (data writes only).
    pub fn user_bytes(&self) -> u64 {
        match self {
            Op::Write { data, .. } => data.len() as u64,
            _ => 0,
        }
    }
}

/// An atomic group of mutations within one logical group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// The logical group all ops belong to (backends shard by this).
    pub group: GroupId,
    /// Sequence number assigned by the OSD (drives `mtime`/versioning).
    pub seq: u64,
    /// The mutations, applied in order.
    pub ops: Vec<Op>,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(group: GroupId, seq: u64, ops: Vec<Op>) -> Self {
        Transaction { group, seq, ops }
    }

    /// Total user payload bytes in the transaction.
    pub fn user_bytes(&self) -> u64 {
        self.ops.iter().map(Op::user_bytes).sum()
    }
}

/// Category of a traced device I/O, for write-amplification breakdowns.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum IoCategory {
    /// Write-ahead-log append.
    Wal,
    /// Memtable flush to a sorted run.
    MemtableFlush,
    /// Background compaction traffic.
    Compaction,
    /// Object data blocks.
    Data,
    /// Object/store metadata (onodes, allocator state, manifests).
    Metadata,
    /// Superblock / checkpoint writes.
    Superblock,
}

/// Direction of a traced I/O.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Device read.
    Read,
    /// Device write.
    Write,
    /// Flush barrier.
    Flush,
}

/// One device I/O performed by a store, reported through
/// [`ObjectStore::take_trace`] so a simulation driver can replay it against
/// a timed device model.
#[derive(Copy, Clone, Debug)]
pub struct TraceIo {
    /// Direction.
    pub kind: TraceKind,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// What the store was doing.
    pub category: IoCategory,
}

/// Cumulative store-level traffic statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Payload bytes clients asked the store to write.
    pub user_bytes: u64,
    /// Bytes written to the device for WAL appends.
    pub wal_bytes: u64,
    /// Bytes written for memtable flushes.
    pub flush_bytes: u64,
    /// Bytes written (re-written) by compaction.
    pub compaction_bytes: u64,
    /// Bytes written to data blocks.
    pub data_bytes: u64,
    /// Bytes written to metadata structures.
    pub metadata_bytes: u64,
    /// Bytes written to superblocks / checkpoints.
    pub superblock_bytes: u64,
    /// Bytes read back from the device.
    pub read_bytes: u64,
    /// Transactions applied.
    pub transactions: u64,
}

impl StoreStats {
    /// Total bytes written to the device, all categories.
    pub fn total_written(&self) -> u64 {
        self.wal_bytes
            + self.flush_bytes
            + self.compaction_bytes
            + self.data_bytes
            + self.metadata_bytes
            + self.superblock_bytes
    }

    /// Host-side write amplification factor: device bytes per user byte.
    /// Returns 0.0 before any user writes.
    pub fn waf(&self) -> f64 {
        if self.user_bytes == 0 {
            0.0
        } else {
            self.total_written() as f64 / self.user_bytes as f64
        }
    }

    /// Adds a traced I/O into these stats.
    pub fn record(&mut self, io: TraceIo) {
        match io.kind {
            TraceKind::Read => self.read_bytes += io.bytes,
            TraceKind::Flush => {}
            TraceKind::Write => match io.category {
                IoCategory::Wal => self.wal_bytes += io.bytes,
                IoCategory::MemtableFlush => self.flush_bytes += io.bytes,
                IoCategory::Compaction => self.compaction_bytes += io.bytes,
                IoCategory::Data => self.data_bytes += io.bytes,
                IoCategory::Metadata => self.metadata_bytes += io.bytes,
                IoCategory::Superblock => self.superblock_bytes += io.bytes,
            },
        }
    }
}

/// Work performed by one maintenance step (compaction, checkpoint, …).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Bytes read during the step.
    pub bytes_read: u64,
    /// Bytes written during the step.
    pub bytes_written: u64,
    /// True if any work was done (false means the store was already clean).
    pub did_work: bool,
}

/// A transactional backend object store.
///
/// Implementations must apply a [`Transaction`] atomically with respect to
/// crash recovery: after a crash, either all of its ops are visible or none.
/// Isolation and ordering *between* transactions is the caller's (OSD core's)
/// responsibility, mirroring the paper's layering.
pub trait ObjectStore {
    /// Applies a transaction.
    ///
    /// # Errors
    ///
    /// Fails with [`StoreError::NoSpace`] when an allocation cannot be
    /// satisfied, [`StoreError::NotFound`]/[`StoreError::OutOfBounds`] on
    /// invalid targets. On error the store remains consistent.
    fn submit(&mut self, txn: Transaction) -> Result<(), StoreError>;

    /// Reads `len` bytes at `offset` from an object.
    ///
    /// # Errors
    ///
    /// Fails with [`StoreError::NotFound`] for missing objects or
    /// [`StoreError::OutOfBounds`] past the object end.
    fn read(&mut self, oid: ObjectId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError>;

    /// Metadata of an object, if it exists.
    fn stat(&mut self, oid: ObjectId) -> Option<ObjectInfo>;

    /// Reads a store-level key/value record written via [`Op::MetaPut`].
    fn get_meta(&mut self, key: &[u8]) -> Option<Vec<u8>>;

    /// True if background maintenance (compaction, checkpointing) is due.
    fn needs_maintenance(&self) -> bool;

    /// Performs one bounded unit of background maintenance.
    fn maintenance(&mut self) -> MaintenanceReport;

    /// Drains the device I/Os performed since the previous call (for replay
    /// against a timed device model).
    fn take_trace(&mut self) -> Vec<TraceIo>;

    /// Cumulative traffic statistics.
    fn stats(&self) -> StoreStats;

    /// Resets traffic statistics (e.g. after warm-up).
    fn reset_stats(&mut self);

    /// Number of independent sharded partitions (1 for unsharded stores).
    fn partitions(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_round_trips_group_and_index() {
        let oid = ObjectId::new(GroupId(513), 0xABCDEF);
        assert_eq!(oid.group(), GroupId(513));
        assert_eq!(oid.index(), 0xABCDEF);
        assert_eq!(ObjectId::from_raw(oid.raw()), oid);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_index_rejected() {
        let _ = ObjectId::new(GroupId(0), 1 << 48);
    }

    #[test]
    fn transaction_user_bytes_counts_only_data() {
        let oid = ObjectId::new(GroupId(1), 7);
        let txn = Transaction::new(
            GroupId(1),
            1,
            vec![
                Op::Write {
                    oid,
                    offset: 0,
                    data: vec![0; 4096].into(),
                },
                Op::MetaPut {
                    key: b"pglog".to_vec(),
                    value: vec![0; 200],
                },
                Op::SetXattr {
                    oid,
                    key: "v".into(),
                    value: vec![1],
                },
            ],
        );
        assert_eq!(txn.user_bytes(), 4096);
    }

    #[test]
    fn stats_record_and_waf() {
        let mut s = StoreStats {
            user_bytes: 1000,
            ..StoreStats::default()
        };
        s.record(TraceIo {
            kind: TraceKind::Write,
            bytes: 1000,
            category: IoCategory::Wal,
        });
        s.record(TraceIo {
            kind: TraceKind::Write,
            bytes: 2000,
            category: IoCategory::Compaction,
        });
        s.record(TraceIo {
            kind: TraceKind::Read,
            bytes: 500,
            category: IoCategory::Compaction,
        });
        s.record(TraceIo {
            kind: TraceKind::Flush,
            bytes: 0,
            category: IoCategory::Wal,
        });
        assert_eq!(s.total_written(), 3000);
        assert_eq!(s.read_bytes, 500);
        assert!((s.waf() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn waf_zero_before_user_writes() {
        assert_eq!(StoreStats::default().waf(), 0.0);
    }

    #[test]
    fn display_formats_are_compact() {
        let oid = ObjectId::new(GroupId(3), 42);
        assert_eq!(oid.to_string(), "g3:42");
        assert_eq!(GroupId(3).to_string(), "pg3");
    }
}
