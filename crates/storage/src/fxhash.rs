//! Seeded deterministic hashing for hot-path maps.
//!
//! `std::collections::HashMap`'s default `RandomState` is SipHash-1-3 with
//! per-process random keys: robust against collision attacks, but ~10× the
//! cost of what a simulator hashing small integer keys needs — and randomly
//! keyed, so two runs of the same binary hash identically-shaped maps into
//! different bucket orders. This module provides the classic Fx multiply-mix
//! hash (as used by rustc) behind a **fixed seed**, so every run of every
//! build hashes identically and the hot maps cost one multiply per word.
//!
//! Determinism discipline: seeding alone does not make iteration order part
//! of the deterministic contract — map iteration order still depends on
//! insertion history and capacity growth. Nothing that feeds a report
//! fingerprint may iterate one of these maps directly; collect-and-sort (or
//! key off an ordered structure) first. The fixed seed exists so *internal*
//! behavior (bucket collisions, resize timing, allocator traffic) is
//! reproducible run-to-run, keeping wall-clock benchmarks and profiles
//! comparable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// 64-bit Fx multiplier (golden-ratio derived, same constant rustc uses).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Default seed folded into every hasher. Arbitrary odd constant; fixed so
/// runs are reproducible. [`FxBuildHasher::with_seed`] overrides it.
const DEFAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The Fx word-at-a-time multiply-mix hasher.
///
/// Not collision-resistant against adversarial keys — fine here, since every
/// key hashed in this workspace is simulator-internal (ids, sequence
/// numbers), never attacker-controlled.
#[derive(Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" and "ab\0" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Builds [`FxHasher`]s from a fixed (or caller-chosen) seed.
#[derive(Clone, Copy, Debug)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    /// A builder with an explicit seed (e.g. a simulation seed, for
    /// workloads that want distinct-but-reproducible bucket layouts).
    pub fn with_seed(seed: u64) -> Self {
        FxBuildHasher { seed }
    }
}

impl Default for FxBuildHasher {
    fn default() -> Self {
        FxBuildHasher { seed: DEFAULT_SEED }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// A `HashMap` keyed by the seeded Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the seeded Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        let a = FxBuildHasher::default().hash_one((7u32, 9u64));
        let b = FxBuildHasher::default().hash_one((7u32, 9u64));
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_hashes() {
        let a = FxBuildHasher::with_seed(1).hash_one(42u64);
        let b = FxBuildHasher::with_seed(2).hash_one(42u64);
        assert_ne!(a, b);
    }

    #[test]
    fn byte_strings_respect_length() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
        assert_ne!(hash_of(&b"".as_slice()), hash_of(&b"\0".as_slice()));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 1000);
    }
}
