//! Error type shared by all storage backends.

use std::error::Error;
use std::fmt;

/// Errors returned by block devices and object stores.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An access past the end of the device / object.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Capacity of the target.
        capacity: u64,
    },
    /// No free space left to satisfy an allocation.
    NoSpace,
    /// The requested object does not exist.
    NotFound,
    /// The object already exists (e.g. duplicate create).
    AlreadyExists,
    /// Persistent state failed a consistency check.
    Corrupt(String),
    /// The caller passed an argument that violates a documented invariant.
    InvalidArgument(String),
    /// The operation did not complete within the client's retry budget
    /// (timeouts and backoff exhausted without a reply).
    Timeout,
    /// The target group is below its `min_size` write quorum — too many
    /// replicas are down to accept the write safely. `EAGAIN`-style:
    /// retryable once recovery restores quorum.
    Degraded,
    /// Stored data failed its block checksum on read: the bytes on the
    /// device no longer match the digest recorded at write time (bit rot,
    /// torn media write). Retryable against another replica; the damaged
    /// replica repairs itself through scrub/read-repair.
    ChecksumMismatch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds capacity {capacity}"
            ),
            StoreError::NoSpace => write!(f, "no free space"),
            StoreError::NotFound => write!(f, "object not found"),
            StoreError::AlreadyExists => write!(f, "object already exists"),
            StoreError::Corrupt(why) => write!(f, "corrupt on-disk state: {why}"),
            StoreError::InvalidArgument(why) => write!(f, "invalid argument: {why}"),
            StoreError::Timeout => write!(f, "operation timed out"),
            StoreError::Degraded => write!(f, "group below write quorum; retry after recovery"),
            StoreError::ChecksumMismatch => {
                write!(f, "stored data failed its checksum; retry another replica")
            }
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_period() {
        let msgs = [
            StoreError::OutOfBounds {
                offset: 1,
                len: 2,
                capacity: 3,
            }
            .to_string(),
            StoreError::NoSpace.to_string(),
            StoreError::NotFound.to_string(),
            StoreError::AlreadyExists.to_string(),
            StoreError::Corrupt("bad magic".into()).to_string(),
            StoreError::InvalidArgument("zero length".into()).to_string(),
            StoreError::Timeout.to_string(),
            StoreError::Degraded.to_string(),
            StoreError::ChecksumMismatch.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m}");
            assert!(
                m.chars().next().unwrap().is_lowercase() || m.starts_with("access"),
                "{m}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<StoreError>();
    }
}
