//! An inline-first vector for small hot-path collections.
//!
//! Replica target lists, ack ledgers, and per-op effect batches are almost
//! always a handful of elements (replication factor ≤ 4 in every paper
//! configuration), yet `Vec` pays a heap allocation for each. [`SmallVec`]
//! stores up to `N` elements inline on the stack and spills to a `Vec` only
//! beyond that, so the common case allocates nothing while odd configs
//! (wide fan-out experiments) still work.

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector holding up to `N` elements inline, spilling to the heap beyond.
pub struct SmallVec<T, const N: usize> {
    /// Number of initialized inline elements; ignored once spilled.
    len: usize,
    data: Data<T, N>,
}

enum Data<T, const N: usize> {
    Inline([MaybeUninit<T>; N]),
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        SmallVec {
            len: 0,
            data: Data::Inline([const { MaybeUninit::uninit() }; N]),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.data {
            Data::Inline(_) => self.len,
            Data::Heap(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an element, spilling to the heap at the `N+1`-th push.
    pub fn push(&mut self, value: T) {
        match &mut self.data {
            Data::Inline(buf) => {
                if self.len < N {
                    buf[self.len].write(value);
                    self.len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    // Move the inline elements out; zero the length first so
                    // Drop never sees half-moved storage.
                    let len = std::mem::replace(&mut self.len, 0);
                    for slot in buf.iter_mut().take(len) {
                        // SAFETY: the first `len` slots were initialized by
                        // `push` and are read exactly once here.
                        v.push(unsafe { slot.assume_init_read() });
                    }
                    v.push(value);
                    self.data = Data::Heap(v);
                }
            }
            Data::Heap(v) => v.push(value),
        }
    }

    /// Removes all elements, keeping heap capacity if spilled.
    pub fn clear(&mut self) {
        match &mut self.data {
            Data::Inline(buf) => {
                let len = std::mem::replace(&mut self.len, 0);
                for slot in buf.iter_mut().take(len) {
                    // SAFETY: the first `len` slots were initialized.
                    unsafe { slot.assume_init_drop() };
                }
            }
            Data::Heap(v) => v.clear(),
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.data {
            // SAFETY: the first `len` inline slots are initialized.
            Data::Inline(buf) => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast::<T>(), self.len)
            },
            Data::Heap(v) => v.as_slice(),
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.data {
            // SAFETY: the first `len` inline slots are initialized.
            Data::Inline(buf) => unsafe {
                std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), self.len)
            },
            Data::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Iterates the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Converts into a plain `Vec`, allocating only if still inline.
    pub fn into_vec(mut self) -> Vec<T> {
        match &mut self.data {
            Data::Heap(v) => std::mem::take(v),
            Data::Inline(buf) => {
                let len = std::mem::replace(&mut self.len, 0);
                let mut v = Vec::with_capacity(len);
                for slot in buf.iter_mut().take(len) {
                    // SAFETY: the first `len` slots were initialized; the
                    // length was zeroed above so Drop won't re-read them.
                    v.push(unsafe { slot.assume_init_read() });
                }
                v
            }
        }
    }

    /// Keeps only the elements `f` accepts, preserving order.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        match &mut self.data {
            Data::Heap(v) => v.retain(|t| f(t)),
            Data::Inline(buf) => {
                // Zero the length for the duration: if `f` panics the
                // worst case is leaked elements, never a double drop.
                let len = std::mem::replace(&mut self.len, 0);
                let mut kept = 0;
                for i in 0..len {
                    // SAFETY: the first `len` slots were initialized; each
                    // is read (moved or dropped) exactly once below.
                    unsafe {
                        if f(buf[i].assume_init_ref()) {
                            if kept != i {
                                let v = buf[i].assume_init_read();
                                buf[kept].write(v);
                            }
                            kept += 1;
                        } else {
                            buf[i].assume_init_drop();
                        }
                    }
                }
                self.len = kept;
            }
        }
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        if let Data::Inline(_) = self.data {
            self.clear();
        }
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = SmallVec::new();
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

impl<T, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    /// By-value iteration goes through a `Vec` (allocates when inline);
    /// hot paths should iterate by reference instead.
    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(matches!(v.data, Data::Inline(_)));
        v.push(4);
        assert!(matches!(v.data, Data::Heap(_)));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_runs_for_inline_elements() {
        use std::rc::Rc;
        let tracker = Rc::new(());
        {
            let mut v: SmallVec<Rc<()>, 4> = SmallVec::new();
            v.push(Rc::clone(&tracker));
            v.push(Rc::clone(&tracker));
            assert_eq!(Rc::strong_count(&tracker), 3);
        }
        assert_eq!(Rc::strong_count(&tracker), 1);
    }

    #[test]
    fn clear_keeps_reuse_working() {
        let mut v: SmallVec<String, 2> = SmallVec::new();
        v.push("a".into());
        v.push("b".into());
        v.push("c".into());
        v.clear();
        assert!(v.is_empty());
        v.push("d".into());
        assert_eq!(v.as_slice(), &["d".to_string()]);
    }

    #[test]
    fn clone_and_eq_match_contents() {
        let v: SmallVec<u8, 2> = [1u8, 2, 3].into_iter().collect();
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(w.len(), 3);
    }
}
