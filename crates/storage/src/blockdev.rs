//! Byte-addressable block devices with traffic accounting.
//!
//! Object stores in this workspace run on raw devices (no local file system),
//! exactly as the paper's CPU-efficient object store and BlueStore do. The
//! [`BlockDevice`] trait is the minimal raw-device contract; [`MemDisk`] is
//! the standard in-memory implementation whose byte counters feed the
//! host-side write-amplification measurements (Table I / Fig. 8).

use crate::error::StoreError;

/// Counters of traffic through a device since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevCounters {
    /// Number of read calls.
    pub reads: u64,
    /// Number of write calls.
    pub writes: u64,
    /// Number of flush calls.
    pub flushes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

/// A raw, byte-addressable storage device.
///
/// Offsets and lengths are bytes; implementations may internally align to
/// sectors but the contract is byte-granular for simplicity.
pub trait BlockDevice {
    /// Total capacity in bytes.
    fn capacity(&self) -> u64;

    /// Reads `buf.len()` bytes starting at `offset` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::OutOfBounds`] if the range exceeds capacity.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError>;

    /// Writes `data` starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::OutOfBounds`] if the range exceeds capacity.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError>;

    /// Durably persists all completed writes.
    ///
    /// # Errors
    ///
    /// Implementations that can fail mid-flush report [`StoreError::Corrupt`].
    fn flush(&mut self) -> Result<(), StoreError>;

    /// Traffic counters since the last [`BlockDevice::reset_counters`].
    fn counters(&self) -> DevCounters;

    /// Zeroes the traffic counters (e.g. after workload warm-up).
    fn reset_counters(&mut self);
}

/// An in-memory block device.
///
/// ```
/// use rablock_storage::{BlockDevice, MemDisk};
/// # fn main() -> Result<(), rablock_storage::StoreError> {
/// let mut disk = MemDisk::new(1 << 20);
/// disk.write_at(4096, b"hello")?;
/// let mut buf = [0u8; 5];
/// disk.read_at(4096, &mut buf)?;
/// assert_eq!(&buf, b"hello");
/// assert_eq!(disk.counters().bytes_written, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemDisk {
    data: Vec<u8>,
    counters: DevCounters,
}

impl MemDisk {
    /// Creates a zero-filled device of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemDisk {
            data: vec![0; capacity as usize],
            counters: DevCounters::default(),
        }
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), StoreError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.data.len() as u64)
        {
            return Err(StoreError::OutOfBounds {
                offset,
                len,
                capacity: self.data.len() as u64,
            });
        }
        Ok(())
    }
}

impl BlockDevice for MemDisk {
    fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        self.check(offset, buf.len() as u64)?;
        let start = offset as usize;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        self.counters.reads += 1;
        self.counters.bytes_read += buf.len() as u64;
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        self.check(offset, data.len() as u64)?;
        let start = offset as usize;
        self.data[start..start + data.len()].copy_from_slice(data);
        self.counters.writes += 1;
        self.counters.bytes_written += data.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.counters.flushes += 1;
        Ok(())
    }

    fn counters(&self) -> DevCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = DevCounters::default();
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for Box<D> {
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        (**self).write_at(offset, data)
    }
    fn flush(&mut self) -> Result<(), StoreError> {
        (**self).flush()
    }
    fn counters(&self) -> DevCounters {
        (**self).counters()
    }
    fn reset_counters(&mut self) {
        (**self).reset_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_at_boundaries() {
        let mut d = MemDisk::new(100);
        d.write_at(95, b"12345").unwrap();
        let mut buf = [0u8; 5];
        d.read_at(95, &mut buf).unwrap();
        assert_eq!(&buf, b"12345");
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut d = MemDisk::new(100);
        assert!(matches!(
            d.write_at(96, b"12345"),
            Err(StoreError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 5];
        assert!(d.read_at(u64::MAX, &mut buf).is_err());
    }

    #[test]
    fn counters_track_traffic_and_reset() {
        let mut d = MemDisk::new(100);
        d.write_at(0, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 2];
        d.read_at(0, &mut buf).unwrap();
        d.flush().unwrap();
        assert_eq!(
            d.counters(),
            DevCounters {
                reads: 1,
                writes: 1,
                flushes: 1,
                bytes_read: 2,
                bytes_written: 3
            }
        );
        d.reset_counters();
        assert_eq!(d.counters(), DevCounters::default());
    }

    #[test]
    fn fresh_device_reads_zeroes() {
        let mut d = MemDisk::new(16);
        let mut buf = [0xFFu8; 16];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn boxed_device_delegates() {
        let mut d: Box<dyn BlockDevice> = Box::new(MemDisk::new(32));
        d.write_at(0, b"x").unwrap();
        assert_eq!(d.counters().writes, 1);
        assert_eq!(d.capacity(), 32);
    }
}
