//! # rablock-storage — storage substrates and the backend object-store contract
//!
//! The foundation layer of the `rablock` workspace:
//!
//! * [`BlockDevice`] + [`MemDisk`] — raw byte-addressable devices with
//!   traffic counters (the source of all write-amplification measurements).
//! * [`CrashDisk`] / [`CrashPlan`] — power-loss injection for crash-recovery
//!   tests (lost, partial, and torn writes).
//! * [`NvmRegion`] — byte-addressable non-volatile memory, as the paper's
//!   ramdisk-emulated NVM.
//! * [`ObjectStore`] / [`Transaction`] — the transactional contract
//!   implemented by both the BlueStore-like LSM backend (`rablock-lsm`) and
//!   the paper's CPU-efficient object store (`rablock-cos`).
//!
//! ```
//! use rablock_storage::{BlockDevice, MemDisk};
//! # fn main() -> Result<(), rablock_storage::StoreError> {
//! let mut disk = MemDisk::new(1 << 20);
//! disk.write_at(0, b"superblock")?;
//! assert_eq!(disk.counters().bytes_written, 10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod blockdev;
mod crash;
mod error;
mod fxhash;
mod nvm;
mod objectstore;
mod payload;
mod smallvec;

pub use blockdev::{BlockDevice, DevCounters, MemDisk};
pub use crash::{CrashDisk, CrashPlan};
pub use error::StoreError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use nvm::NvmRegion;
pub use objectstore::{
    GroupId, IoCategory, MaintenanceReport, ObjectId, ObjectInfo, ObjectStore, Op, StoreStats,
    TraceIo, TraceKind, Transaction,
};
pub use payload::Payload;
pub use smallvec::SmallVec;
