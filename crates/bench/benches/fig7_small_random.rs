//! Figure 7 — small random I/O: Original vs Proposed vs Ideal.
//!
//! Reproduces §V-B: 4 KiB random writes (a) and reads (b) against the full
//! cluster, reporting IOPS, latency, per-node CPU and its breakdown by
//! thread class. The paper's claims to reproduce:
//!
//! * Proposed ≈3–4.5× Original's write IOPS at lower latency
//!   (181 K @ 4.3 ms → 820 K @ 1.11 ms on their testbed).
//! * Original's CPU is dominated by storage processing and the
//!   compaction/maintenance threads (MT ≈800 % of 3700 %).
//! * Proposed sits between Original and Ideal; the gap to Ideal is the
//!   logical-group lock on the operation log.
//! * Random reads also favor Proposed (locality-aware processing).

use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_iops, fmt_latency, Table};

fn main() {
    banner(
        "fig7_small_random",
        "4 KiB random write (a) and read (b): Original / Proposed / Ideal",
    );

    let conns = 16;
    let dataset = Dataset::default_for(conns);
    let (warmup, measure) = windows();

    for (part, is_write) in [("(a) random write", true), ("(b) random read", false)] {
        println!("\n--- {part} ---");
        let mut table = Table::new([
            "system",
            "IOPS",
            "mean lat",
            "p95 lat",
            "CPU%/node",
            "class breakdown",
        ]);
        let mut csv = Table::new(["system", "iops", "lat_ns", "cpu_pct"]);
        for mode in [
            PipelineMode::Original,
            PipelineMode::Dop,
            PipelineMode::Ideal,
        ] {
            let cfg = paper_cluster(mode);
            let workloads = if is_write {
                randwrite_conns(dataset, conns)
            } else {
                randread_conns(dataset, conns)
            };
            let report = run_sim(cfg, dataset, workloads, warmup, measure);
            let (iops, lat) = if is_write {
                (report.write_iops, report.write_lat)
            } else {
                (report.read_iops, report.read_lat)
            };
            let classes: Vec<String> = report
                .class_cpu_pct
                .iter()
                .filter(|(k, v)| **k != "client" && **v > 0.5)
                .map(|(k, v)| format!("{k}={v:.0}%"))
                .collect();
            table.row([
                mode_name(mode).to_string(),
                fmt_iops(iops),
                fmt_latency(lat.mean.as_nanos()),
                fmt_latency(lat.p95.as_nanos()),
                format!("{:.0}%", report.mean_node_cpu()),
                classes.join(" "),
            ]);
            csv.row([
                format!(
                    "{}-{}",
                    mode_name(mode),
                    if is_write { "write" } else { "read" }
                ),
                format!("{iops:.0}"),
                lat.mean.as_nanos().to_string(),
                format!("{:.1}", report.mean_node_cpu()),
            ]);
        }
        println!("{}", table.render());
        write_csv(
            if is_write {
                "fig7a_small_random_write"
            } else {
                "fig7b_small_random_read"
            },
            &csv.to_csv(),
        );
    }

    println!("paper reference: write — Original 181K @ 4.3ms (3700%/node, MT≈800%),");
    println!("Proposed 820K @ 1.11ms, Ideal above Proposed; reads also favor Proposed.");
}
