//! Figure 10 — YCSB workloads A, B, C, D, F.
//!
//! Reproduces §V-E: YCSB with small *unaligned* records (1000 B) over the
//! block service, Original vs Proposed, reporting read/update latency and
//! throughput. The paper's per-workload observations to reproduce:
//!
//! * A (50/50): Proposed's update latency is much lower; unaligned writes
//!   trigger read-modify-writes in the object store; read latencies are
//!   comparable.
//! * B (95/5 read): Proposed slightly better reads; updates still faster.
//! * C (read-only): Proposed slightly better (locality).
//! * D (read-latest, 5% insert): Proposed's inserts far faster (no
//!   compaction threads in the way); reads better too (rarely flushed).
//! * F (read-modify-write): Original's updates take ≈1.7 ms vs ≈1.02 ms.

use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_iops, fmt_latency, Table, YcsbKind, YcsbWorkload};

fn main() {
    banner(
        "fig10_ycsb",
        "YCSB A/B/C/D/F with 1000-byte unaligned records: Original vs Proposed",
    );

    let conns = 8;
    let records_per_image = 12_000u64;
    let record_bytes = 1_000u64;
    let capacity = 16_000u64;
    let dataset = Dataset {
        images: conns as u64,
        image_bytes: capacity * record_bytes,
    };
    let (warmup, measure) = windows();

    let mut table = Table::new(["workload", "system", "throughput", "read lat", "update lat"]);
    let mut csv = Table::new([
        "workload",
        "system",
        "ops_per_s",
        "read_lat_ns",
        "update_lat_ns",
    ]);

    for kind in YcsbKind::ALL {
        for mode in [PipelineMode::Original, PipelineMode::Dop] {
            let cfg = paper_cluster(mode);
            let workloads = (0..conns)
                .map(|c| {
                    let wl = YcsbWorkload::new(kind, records_per_image, record_bytes, capacity);
                    Box::new(YcsbConn::new(dataset, c as u64, wl))
                        as Box<dyn rablock::sim::ConnWorkload>
                })
                .collect();
            let report = run_sim(cfg, dataset, workloads, warmup, measure);
            let throughput =
                (report.writes_done + report.reads_done) as f64 / report.duration.as_secs_f64();
            table.row([
                kind.to_string(),
                mode_name(mode).to_string(),
                fmt_iops(throughput),
                fmt_latency(report.read_lat.mean.as_nanos()),
                if report.writes_done > 0 {
                    fmt_latency(report.write_lat.mean.as_nanos())
                } else {
                    "-".to_string()
                },
            ]);
            csv.row([
                kind.to_string(),
                mode_name(mode).to_string(),
                format!("{throughput:.0}"),
                report.read_lat.mean.as_nanos().to_string(),
                report.write_lat.mean.as_nanos().to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("paper reference: Proposed's update latency is far lower on A/B/D/F");
    println!("(F: 1.02ms vs 1.7ms); reads comparable on A, better on B/C/D; the");
    println!("unaligned records force read-modify-writes in both backends.");
    write_csv("fig10_ycsb", &csv.to_csv());
}
