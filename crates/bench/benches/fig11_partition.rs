//! Figure 11 — partition scalability of the CPU-efficient object store.
//!
//! Reproduces §V-F: 4 KiB random writes against the Proposed system with a
//! growing number of sharded partitions per OSD; each step also adds client
//! connections, as in the paper ("whenever the number of sharded partitions
//! increases, the clients add six connections"). Expected shape: IOPS grows
//! with the partition count — each partition is served by its own
//! non-priority thread without cross-partition locks.

use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_iops, fmt_latency, Table};

fn main() {
    banner(
        "fig11_partition",
        "IOPS vs sharded partitions per OSD (Proposed, 4 KiB random write)",
    );

    let (warmup, measure) = windows();
    let mut table = Table::new(["partitions", "connections", "IOPS", "mean lat"]);
    let mut csv = Table::new(["partitions", "connections", "iops", "lat_ns"]);

    for (i, partitions) in [1usize, 2, 4, 8].into_iter().enumerate() {
        // Paper: +6 connections per step; scaled here to +3.
        let conns = 3 * (i + 1);
        let dataset = Dataset::default_for(conns);
        let mut cfg = paper_cluster(PipelineMode::Dop);
        cfg.osd.cos.partitions = partitions;
        // Non-priority threads track partitions 1:1 (§IV-C: one thread owns
        // one partition).
        cfg.non_priority_threads = partitions;
        let report = run_sim(
            cfg,
            dataset,
            randwrite_conns(dataset, conns),
            warmup,
            measure,
        );
        table.row([
            partitions.to_string(),
            conns.to_string(),
            fmt_iops(report.write_iops),
            fmt_latency(report.write_lat.mean.as_nanos()),
        ]);
        csv.row([
            partitions.to_string(),
            conns.to_string(),
            format!("{:.0}", report.write_iops),
            report.write_lat.mean.as_nanos().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper reference: performance improves every time the partition count doubles.");
    write_csv("fig11_partition", &csv.to_csv());
}
