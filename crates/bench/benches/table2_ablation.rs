//! Table II — per-technique ablation: Original → COS → PTC → DOP.
//!
//! Reproduces §V-B's Table II: applying the three techniques cumulatively
//! under 4 KiB random writes. The paper's ladder (testbed scale):
//!
//! | system  | K IOPS | latency |
//! |---------|--------|---------|
//! | Original| 181    | 4.3 ms  |
//! | COS     | 471    | 3.1 ms  |
//! | PTC     | 641    | 2.2 ms  |
//! | DOP     | 820    | 1.11 ms |
//!
//! The reproduction target is the ordering and the monotone latency drop.

use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_iops, fmt_latency, Table};

fn main() {
    banner(
        "table2_ablation",
        "cumulative technique ablation (4 KiB random write)",
    );

    let conns = 16;
    let dataset = Dataset::default_for(conns);
    let (warmup, measure) = windows();

    let paper = [
        ("Original", 181, 4.3),
        ("COS", 471, 3.1),
        ("PTC", 641, 2.2),
        ("DOP (Proposed)", 820, 1.11),
    ];
    let mut table = Table::new([
        "system",
        "paper K IOPS",
        "paper lat",
        "measured IOPS",
        "measured lat",
        "vs Original",
    ]);
    let mut csv = Table::new(["system", "iops", "lat_ns"]);

    let mut base_iops = 0.0;
    for (i, mode) in [
        PipelineMode::Original,
        PipelineMode::Cos,
        PipelineMode::Ptc,
        PipelineMode::Dop,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = paper_cluster(mode);
        let report = run_sim(
            cfg,
            dataset,
            randwrite_conns(dataset, conns),
            warmup,
            measure,
        );
        if i == 0 {
            base_iops = report.write_iops;
        }
        let (pname, piops, plat) = paper[i];
        table.row([
            pname.to_string(),
            piops.to_string(),
            format!("{plat} ms"),
            fmt_iops(report.write_iops),
            fmt_latency(report.write_lat.mean.as_nanos()),
            format!("{:.2}x", report.write_iops / base_iops),
        ]);
        csv.row([
            mode_name(mode).to_string(),
            format!("{:.0}", report.write_iops),
            report.write_lat.mean.as_nanos().to_string(),
        ]);
    }
    println!("{}", table.render());
    write_csv("table2_ablation", &csv.to_csv());
}
