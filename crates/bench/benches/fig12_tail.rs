//! Figure 12 — worst-case (95th percentile) latency vs flush threshold.
//!
//! Reproduces §V-G: a mixed random workload (80% write / 20% read) offered
//! at a constant rate, sweeping the operation-log flush threshold. The
//! paper's point: Proposed's asynchronous flush has a tail-latency cost —
//! a read of an object with pending log entries forces a flush of the
//! whole batch, so the 95th-percentile latency grows with the number of
//! entries allowed to accumulate.

use rablock::sim::SimDuration;
use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{AccessPattern, FioJob, Table};

fn main() {
    banner(
        "fig12_tail",
        "95p latency vs op-log flush threshold (80:20 write:read, fixed rate)",
    );

    let conns = 12;
    // Small working set so reads regularly hit objects with pending log
    // entries — those are the reads that must wait for a batch flush.
    let dataset = Dataset {
        images: conns as u64,
        image_bytes: 2 << 20,
    };
    let (warmup, measure) = windows();

    let mut table = Table::new([
        "flush threshold",
        "write p95",
        "read p95",
        "write p99",
        "offered ops/s",
    ]);
    let mut csv = Table::new(["threshold", "write_p95_ns", "read_p95_ns", "write_p99_ns"]);

    for threshold in [4usize, 8, 16, 32, 64] {
        let mut cfg = paper_cluster(PipelineMode::Dop);
        cfg.osd.flush_threshold = threshold;
        // Open loop at a constant offered rate below saturation (the paper
        // holds 300 K/s on its testbed).
        cfg.pacing = Some(SimDuration::micros(300));
        // Larger rings so deep thresholds do not hit the NVM-full path,
        // and a long sweep period so the threshold (not the timeout)
        // governs how many entries accumulate.
        cfg.osd.ring_bytes = 512 << 10;
        cfg.flush_sweep = SimDuration::millis(40);
        let workloads = (0..conns)
            .map(|c| {
                let job = FioJob::new(
                    AccessPattern::RandRw { read_pct: 20 },
                    4096,
                    dataset.image_bytes,
                );
                Box::new(FioConn::new(dataset, c as u64, job))
                    as Box<dyn rablock::sim::ConnWorkload>
            })
            .collect();
        let report = run_sim(cfg, dataset, workloads, warmup, measure);
        let offered =
            (report.writes_done + report.reads_done) as f64 / report.duration.as_secs_f64();
        table.row([
            threshold.to_string(),
            rablock_workload::fmt_latency(report.write_lat.p95.as_nanos()),
            rablock_workload::fmt_latency(report.read_lat.p95.as_nanos()),
            rablock_workload::fmt_latency(report.write_lat.p99.as_nanos()),
            format!("{offered:.0}"),
        ]);
        csv.row([
            threshold.to_string(),
            report.write_lat.p95.as_nanos().to_string(),
            report.read_lat.p95.as_nanos().to_string(),
            report.write_lat.p99.as_nanos().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper reference: 95p latency grows considerably with the number of");
    println!("entries allowed in the operation log (batch flushes block reads).");
    write_csv("fig12_tail", &csv.to_csv());
}
