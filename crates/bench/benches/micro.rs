//! Criterion microbenchmarks for the core data structures.
//!
//! These quantify the per-operation costs behind the paper's CPU argument:
//! the LSM submit path vs the COS in-place path, the NVM operation-log
//! append, the free-extent B+tree, and the onode radix tree.

use criterion::{criterion_group, criterion_main, Criterion};
use rablock_cos::{CosObjectStore, CosOptions, ExtentBTree, RadixTree};
use rablock_lsm::{LsmObjectStore, LsmOptions};
use rablock_oplog::GroupLog;
use rablock_storage::{GroupId, MemDisk, NvmRegion, ObjectId, ObjectStore, Op, Transaction};

fn write_txn(seq: u64, oid: ObjectId, block: u64) -> Transaction {
    Transaction::new(
        oid.group(),
        seq,
        vec![Op::Write {
            oid,
            offset: block * 4096,
            data: vec![seq as u8; 4096].into(),
        }],
    )
}

fn bench_store_submit(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_submit_4k");

    let mut lsm = LsmObjectStore::open(MemDisk::new(256 << 20), LsmOptions::default()).unwrap();
    let oid = ObjectId::new(GroupId(0), 1);
    let mut seq = 0u64;
    group.bench_function("lsm", |b| {
        b.iter(|| {
            seq += 1;
            lsm.submit(write_txn(seq, oid, seq % 256)).unwrap();
            let _ = lsm.take_trace();
            while lsm.needs_maintenance() {
                lsm.maintenance();
                let _ = lsm.take_trace();
            }
        })
    });

    let mut cos = CosObjectStore::format(MemDisk::new(256 << 20), CosOptions::default()).unwrap();
    cos.submit(Transaction::new(
        GroupId(0),
        1,
        vec![Op::Create { oid, size: 4 << 20 }],
    ))
    .unwrap();
    let mut seq = 1u64;
    group.bench_function("cos", |b| {
        b.iter(|| {
            seq += 1;
            cos.submit(write_txn(seq, oid, seq % 256)).unwrap();
            let _ = cos.take_trace();
        })
    });
    group.finish();
}

fn bench_store_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_read_4k");
    let oid = ObjectId::new(GroupId(0), 1);

    let mut lsm = LsmObjectStore::open(MemDisk::new(256 << 20), LsmOptions::default()).unwrap();
    for s in 0..256u64 {
        lsm.submit(write_txn(s + 1, oid, s)).unwrap();
    }
    let mut i = 0u64;
    group.bench_function("lsm", |b| {
        b.iter(|| {
            i += 1;
            lsm.read(oid, (i % 256) * 4096, 4096).unwrap()
        })
    });

    let mut cos = CosObjectStore::format(MemDisk::new(256 << 20), CosOptions::default()).unwrap();
    cos.submit(Transaction::new(
        GroupId(0),
        1,
        vec![Op::Create { oid, size: 4 << 20 }],
    ))
    .unwrap();
    for s in 0..256u64 {
        cos.submit(write_txn(s + 1, oid, s)).unwrap();
    }
    let mut i = 0u64;
    group.bench_function("cos", |b| {
        b.iter(|| {
            i += 1;
            cos.read(oid, (i % 256) * 4096, 4096).unwrap()
        })
    });
    group.finish();
}

fn bench_oplog_append(c: &mut Criterion) {
    let mut nvm = NvmRegion::new(64 << 20);
    let mut log = GroupLog::format(&mut nvm, GroupId(0), 0, 64 << 20, usize::MAX).unwrap();
    let oid = ObjectId::new(GroupId(0), 1);
    let mut seq = 0u64;
    c.bench_function("oplog_append_4k", |b| {
        b.iter(|| {
            seq += 1;
            log.append(&mut nvm, write_txn(seq, oid, seq % 256))
                .unwrap();
            if log.pending() >= 64 {
                log.drain_for_flush(&mut nvm, 64).unwrap();
            }
        })
    });
}

fn bench_extent_btree(c: &mut Criterion) {
    c.bench_function("extent_btree_alloc_free", |b| {
        let mut tree = ExtentBTree::new_free(0, 1 << 24);
        let mut held: Vec<(u64, u64)> = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if held.len() < 512 {
                let len = 1 + i % 64;
                let start = tree.alloc(len).unwrap();
                held.push((start, len));
            } else {
                let (s, l) = held.swap_remove((i % 512) as usize);
                tree.free(s, l).unwrap();
            }
        })
    });
}

fn bench_radix(c: &mut Criterion) {
    let mut tree = RadixTree::new();
    for k in 0..100_000u64 {
        tree.insert(k * 7 % (1 << 30), (k % 4096) as u32);
    }
    let mut i = 0u64;
    c.bench_function("radix_lookup_100k", |b| {
        b.iter(|| {
            i += 1;
            tree.get((i * 7) % (1 << 30))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_store_submit, bench_store_read, bench_oplog_append, bench_extent_btree, bench_radix
}
criterion_main!(benches);
