//! Table I — host-side write amplification of the baseline.
//!
//! Reproduces §III-B's measurement: during a 4 KiB random-write run against
//! the BlueStore-like backend, count (a) bytes the clients wrote (User),
//! (b) user bytes including replication (Data), (c) everything else the
//! stack wrote (Misc: WAL, memtable flushes, compaction, manifests), and
//! (d) the device total. The paper measures User 21 GB → Total 120 GB,
//! i.e. backend-induced amplification ≈3×.

use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_bytes, Table};

fn main() {
    banner(
        "table1_waf",
        "host-side write amplification of Original (4 KiB random write)",
    );

    let conns = 8;
    let dataset = Dataset::default_for(conns);
    let mut cfg = paper_cluster(PipelineMode::Original);
    // Deeper level hierarchy so compaction reaches its steady cadence
    // within the window (the paper's run is 5 minutes; ours is sub-second).
    cfg.osd.lsm.level_base_bytes = 4 << 20;
    cfg.osd.lsm.level_multiplier = 6;
    let (warmup, _) = windows();
    // Longer window than the default: compaction needs time to reach its
    // steady cadence.
    let measure = rablock::sim::SimDuration::millis(900);
    let report = run_sim(
        cfg,
        dataset,
        randwrite_conns(dataset, conns),
        warmup,
        measure,
    );

    let user = report.store.user_bytes / 2; // backend sees user × replication
    let data = report.store.user_bytes;
    let total = report.device.bytes_written;
    let misc = total.saturating_sub(data);

    let mut table = Table::new(["", "User", "Data", "Misc", "Total", "Total/Data"]);
    table.row([
        "paper (GB)".to_string(),
        "21".into(),
        "42".into(),
        "78".into(),
        "120".into(),
        "2.86x".into(),
    ]);
    table.row([
        "measured".to_string(),
        fmt_bytes(user),
        fmt_bytes(data),
        fmt_bytes(misc),
        fmt_bytes(total),
        format!("{:.2}x", total as f64 / data as f64),
    ]);
    println!("{}", table.render());
    println!(
        "breakdown of Misc (measured): wal={} flush={} compaction={} manifests={}",
        fmt_bytes(report.store.wal_bytes),
        fmt_bytes(report.store.flush_bytes),
        fmt_bytes(report.store.compaction_bytes),
        fmt_bytes(report.store.superblock_bytes),
    );

    let mut csv = Table::new(["metric", "bytes"]);
    csv.row(["user", &user.to_string()]);
    csv.row(["data", &data.to_string()]);
    csv.row(["misc", &misc.to_string()]);
    csv.row(["total", &total.to_string()]);
    write_csv("table1_waf", &csv.to_csv());
}
