//! Figure 1 — roofline analysis: Original vs RTC-v1/v2/v3.
//!
//! Reproduces §III-A: the baseline constrained to 4 cores and 4 threads per
//! node under 4 KiB random writes, against the three run-to-completion
//! variants that successively strip the object store (v2) and transaction
//! processing (v3). The paper's observations to reproduce:
//!
//! * Original is CPU-hungry for low IOPS (≈29 K IOPS at ≈346 %/node).
//! * RTC-v1 is only slightly better than Original (context switches are
//!   not the whole story).
//! * RTC-v2 still has ≈1.45 ms latency, RTC-v3 ≈0.8 ms — far above raw
//!   device latency, showing the replication path itself is expensive.
//! * MT (compaction) burns a visible share of CPU in Original/RTC-v1.

use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_iops, fmt_latency, Table};

fn main() {
    banner(
        "fig1_roofline",
        "latency and CPU of Original vs RTC variants (4 cores/node)",
    );

    let conns = 12;
    let dataset = Dataset::default_for(conns);
    let (warmup, measure) = windows();

    let mut table = Table::new([
        "variant",
        "IOPS",
        "mean lat",
        "p95 lat",
        "CPU%/node",
        "MP+RP%",
        "TP+OS%",
        "MT%",
        "ctx switches",
    ]);
    let mut csv = Table::new([
        "variant", "iops", "lat_ns", "cpu_pct", "np_pct", "sp_pct", "mt_pct",
    ]);

    for mode in [
        PipelineMode::Original,
        PipelineMode::RtcV1,
        PipelineMode::RtcV2,
        PipelineMode::RtcV3,
    ] {
        let mut cfg = paper_cluster(mode);
        // The roofline setup: 4 cores per node, 4 worker threads per node.
        cfg.cores_per_node = 4;
        cfg.osds_per_node = 1;
        cfg.messenger_threads = 2;
        cfg.pg_threads = 2;
        cfg.rtc_threads = 4;
        let report = run_sim(
            cfg,
            dataset,
            randwrite_conns(dataset, conns),
            warmup,
            measure,
        );

        let np = report.tag_cpu_pct.get("MP").unwrap_or(&0.0)
            + report.tag_cpu_pct.get("RP").unwrap_or(&0.0);
        let sp = report.tag_cpu_pct.get("TP").unwrap_or(&0.0)
            + report.tag_cpu_pct.get("OS").unwrap_or(&0.0);
        let mt = *report.tag_cpu_pct.get("MT").unwrap_or(&0.0);
        let cpu = report.mean_node_cpu();
        table.row([
            mode_name(mode).to_string(),
            fmt_iops(report.write_iops),
            fmt_latency(report.write_lat.mean.as_nanos()),
            fmt_latency(report.write_lat.p95.as_nanos()),
            format!("{cpu:.0}%"),
            format!("{:.0}%", np / cfg_nodes() as f64),
            format!("{:.0}%", sp / cfg_nodes() as f64),
            format!("{:.0}%", mt / cfg_nodes() as f64),
            report.context_switches.to_string(),
        ]);
        csv.row([
            mode_name(mode).to_string(),
            format!("{:.0}", report.write_iops),
            report.write_lat.mean.as_nanos().to_string(),
            format!("{cpu:.1}"),
            format!("{:.1}", np / cfg_nodes() as f64),
            format!("{:.1}", sp / cfg_nodes() as f64),
            format!("{:.1}", mt / cfg_nodes() as f64),
        ]);
    }

    println!("{}", table.render());
    println!("paper reference (absolute numbers are testbed-scale):");
    println!("  Original ≈29K IOPS at ≈346%/node; RTC-v1 slightly better at lower CPU;");
    println!("  RTC-v2 latency ≈1.45ms; RTC-v3 ≈0.8ms at ≈200%/node — both far above");
    println!("  the ≈0.4ms the raw NVMe device would need.");
    write_csv("fig1_roofline", &csv.to_csv());
}

fn cfg_nodes() -> u32 {
    4
}
