//! Figure 8 — host-side write amplification: Original vs Proposed.
//!
//! Reproduces §V-C: bytes written to storage vs bytes the users wrote,
//! under 4 KiB random writes, for
//!
//! * (a) Original (BlueStore-like LSM backend) — WAF ≈ 3×,
//! * (b) Proposed with pre-allocation — WAF ≈ 1.1–1.4×,
//! * (b) Proposed with pre-allocation + NVM metadata cache — WAF ≈ 1.0,
//! * extension (§VI discussion): Proposed *without* pre-allocation, showing
//!   the extra allocator-metadata writes the paper warns about.
//!
//! All numbers come from real device byte counters — the LSM really
//! compacts and the COS really writes onodes.

use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_bytes, Table};

fn main() {
    banner(
        "fig8_waf",
        "write amplification: Original vs Proposed (±pre-allocation, ±metadata cache)",
    );

    let conns = 8;
    let dataset = Dataset::default_for(conns);
    let (warmup, _) = windows();
    let measure = rablock::sim::SimDuration::millis(400);

    struct Case {
        name: &'static str,
        mode: PipelineMode,
        pre_allocate: bool,
        metadata_cache: bool,
        paper: &'static str,
    }
    let cases = [
        Case {
            name: "Original (LSM)",
            mode: PipelineMode::Original,
            pre_allocate: true,
            metadata_cache: false,
            paper: "~2.9x",
        },
        Case {
            name: "Proposed, prealloc, no meta-cache",
            mode: PipelineMode::Dop,
            pre_allocate: true,
            metadata_cache: false,
            paper: "~1.4x",
        },
        Case {
            name: "Proposed, prealloc + meta-cache",
            mode: PipelineMode::Dop,
            pre_allocate: true,
            metadata_cache: true,
            paper: "~1.0x",
        },
        Case {
            name: "Proposed, NO prealloc (ext.)",
            mode: PipelineMode::Dop,
            pre_allocate: false,
            metadata_cache: false,
            paper: ">1.4x",
        },
    ];

    let mut table = Table::new([
        "configuration",
        "user bytes",
        "device bytes",
        "WAF",
        "paper WAF",
    ]);
    let mut csv = Table::new(["configuration", "user_bytes", "device_bytes", "waf"]);

    for case in cases {
        let mut cfg = paper_cluster(case.mode);
        cfg.osd.cos.pre_allocate = case.pre_allocate;
        cfg.osd.cos.metadata_cache = case.metadata_cache;
        let report = run_sim(
            cfg,
            dataset,
            randwrite_conns(dataset, conns),
            warmup,
            measure,
        );
        // User bytes including replication, as iostat sees them.
        let user = report.store.user_bytes;
        let device = report.device.bytes_written;
        let waf = device as f64 / user.max(1) as f64;
        table.row([
            case.name.to_string(),
            fmt_bytes(user),
            fmt_bytes(device),
            format!("{waf:.2}x"),
            case.paper.to_string(),
        ]);
        csv.row([
            case.name.to_string(),
            user.to_string(),
            device.to_string(),
            format!("{waf:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("note: 'user bytes' includes replication (factor 2), matching the paper's");
    println!("iostat methodology; NVM metadata-cache writes land in NVM, not the device.");
    write_csv("fig8_waf", &csv.to_csv());
}
