//! Extension ablations beyond the paper's figures.
//!
//! Two design claims the paper makes in prose, quantified:
//!
//! 1. **NVM capacity (§IV-A)** — "our method is feasible even with only a
//!    small amount of NVM because flushing can be finished even before the
//!    next I/O request arrives." Sweep the per-group ring size down until
//!    the synchronous-flush fallback kicks in and watch IOPS and stalls.
//! 2. **Context-switch cost (§III-B)** — the thread-pool baseline hops
//!    threads several times per request; the proposed pipeline mostly does
//!    not. Sweeping the per-switch cost shows who pays for it.

use rablock::sim::SimDuration;
use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{fmt_iops, fmt_latency, Table};

fn nvm_capacity_sweep() {
    println!("\n--- ablation A: NVM ring capacity per group (Proposed) ---");
    let conns = 12;
    let dataset = Dataset::default_for(conns);
    let (warmup, measure) = windows();
    let mut table = Table::new([
        "ring bytes/group",
        "IOPS",
        "mean lat",
        "p99 lat",
        "NVM-full stalls",
    ]);
    let mut csv = Table::new(["ring_bytes", "iops", "lat_ns", "stalls"]);
    for ring in [16u64 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10] {
        let mut cfg = paper_cluster(PipelineMode::Dop);
        cfg.osd.ring_bytes = ring;
        let report = run_sim(
            cfg,
            dataset,
            randwrite_conns(dataset, conns),
            warmup,
            measure,
        );
        table.row([
            format!("{} KiB", ring >> 10),
            fmt_iops(report.write_iops),
            fmt_latency(report.write_lat.mean.as_nanos()),
            fmt_latency(report.write_lat.p99.as_nanos()),
            report.nvm_full_stalls.to_string(),
        ]);
        csv.row([
            ring.to_string(),
            format!("{:.0}", report.write_iops),
            report.write_lat.mean.as_nanos().to_string(),
            report.nvm_full_stalls.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: throughput holds with surprisingly small rings (the");
    println!("bottom half keeps up); only the smallest rings trigger synchronous-");
    println!("flush stalls, and the p99 pays first — the paper's §IV-A claim.");
    write_csv("ablation_nvm_capacity", &csv.to_csv());
}

fn ctx_switch_sweep() {
    println!("\n--- ablation B: context-switch cost sensitivity ---");
    let conns = 12;
    let dataset = Dataset::default_for(conns);
    let (warmup, measure) = windows();
    let mut table = Table::new([
        "switch cost",
        "Original IOPS",
        "Proposed IOPS",
        "Original ctx/op",
        "Proposed ctx/op",
    ]);
    let mut csv = Table::new(["switch_ns", "orig_iops", "prop_iops"]);
    for cost_ns in [0u64, 1_200, 3_000, 6_000] {
        let mut cells = vec![format!("{:.1} us", cost_ns as f64 / 1000.0)];
        let mut csv_cells = vec![cost_ns.to_string()];
        let mut per_op = Vec::new();
        for mode in [PipelineMode::Original, PipelineMode::Dop] {
            let mut cfg = paper_cluster(mode);
            cfg.ctx_switch = SimDuration::nanos(cost_ns);
            let report = run_sim(
                cfg,
                dataset,
                randwrite_conns(dataset, conns),
                warmup,
                measure,
            );
            cells.push(fmt_iops(report.write_iops));
            csv_cells.push(format!("{:.0}", report.write_iops));
            per_op.push(report.context_switches as f64 / report.writes_done.max(1) as f64);
        }
        cells.push(format!("{:.1}", per_op[0]));
        cells.push(format!("{:.1}", per_op[1]));
        table.row(cells);
        csv.row(csv_cells);
    }
    println!("{}", table.render());
    println!("expected shape: the thread-pool baseline performs several switches per");
    println!("request and degrades as switches get pricier; the prioritized pipeline");
    println!("performs far fewer and barely moves — §III-B quantified.");
    write_csv("ablation_ctx_switch", &csv.to_csv());
}

fn main() {
    banner(
        "ablations",
        "extension ablations: NVM capacity pressure; context-switch cost",
    );
    nvm_capacity_sweep();
    ctx_switch_sweep();
}
