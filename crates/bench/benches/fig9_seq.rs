//! Figure 9 — large sequential throughput vs client threads.
//!
//! Reproduces §V-D: 128 KiB sequential reads and writes with an increasing
//! number of client threads, Original vs Proposed. The paper's shape:
//!
//! * Write throughput saturates at the devices' aggregate write bandwidth
//!   divided by the replication factor (their 5.5 GB/s plateau).
//! * Read throughput scales to near the aggregate read bandwidth
//!   (their 22 GB/s), because reads hit only the primary.
//! * Proposed ≈ Original here: with large transfers, CPU is not the
//!   bottleneck and the backends move the same bytes.

use rablock::sim::ConnWorkload;
use rablock::PipelineMode;
use rablock_bench::*;
use rablock_workload::{AccessPattern, FioJob, Table};

fn main() {
    banner(
        "fig9_seq",
        "128 KiB sequential read/write throughput vs client threads",
    );

    let warmup = rablock::sim::SimDuration::millis(80);
    let measure = rablock::sim::SimDuration::millis(120);
    let mut table = Table::new([
        "threads",
        "Original write GB/s",
        "Proposed write GB/s",
        "Original read GB/s",
        "Proposed read GB/s",
    ]);
    let mut csv = Table::new([
        "threads",
        "orig_write_gbps",
        "prop_write_gbps",
        "orig_read_gbps",
        "prop_read_gbps",
    ]);

    for threads in [1usize, 2, 4, 8, 16] {
        let mut cells = vec![threads.to_string()];
        let mut csv_cells = vec![threads.to_string()];
        for pattern in [AccessPattern::SeqWrite, AccessPattern::SeqRead] {
            for mode in [PipelineMode::Original, PipelineMode::Dop] {
                let mut cfg = paper_cluster(mode);
                cfg.queue_depth = 8;
                // Sequential I/O moves big payloads; keep the live set small.
                let dataset = Dataset {
                    images: threads as u64,
                    image_bytes: 8 << 20,
                };
                let workloads: Vec<Box<dyn ConnWorkload>> = (0..threads)
                    .map(|c| {
                        if matches!(pattern, AccessPattern::SeqRead) {
                            Box::new(SeqWriteThenRead::new(dataset, c as u64))
                                as Box<dyn ConnWorkload>
                        } else {
                            let job = FioJob::new(pattern, 128 << 10, dataset.image_bytes);
                            Box::new(FioConn::new(dataset, c as u64, job)) as Box<dyn ConnWorkload>
                        }
                    })
                    .collect();
                let report = run_sim(cfg, dataset, workloads, warmup, measure);
                let (done, _) = if matches!(pattern, AccessPattern::SeqWrite) {
                    (report.writes_done, report.write_lat)
                } else {
                    (report.reads_done, report.read_lat)
                };
                let gbps =
                    done as f64 * (128u64 << 10) as f64 / report.duration.as_secs_f64() / 1e9;
                cells.push(format!("{gbps:.2}"));
                csv_cells.push(format!("{gbps:.3}"));
            }
        }
        // Reorder: write orig, write prop, read orig, read prop already in order.
        table.row(cells);
        csv.row(csv_cells);
    }
    println!("{}", table.render());
    println!("paper reference: writes plateau ≈5.5 GB/s (device-bandwidth / replication),");
    println!("reads scale to ≈22 GB/s; Proposed ≈ Original for large sequential I/O.");
    write_csv("fig9_seq", &csv.to_csv());
}
