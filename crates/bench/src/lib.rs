//! # rablock-bench — shared harness plumbing for the paper's experiments
//!
//! Each `benches/*.rs` target regenerates one table or figure from the
//! paper. This library holds what they share: the scaled-down cluster
//! recipe, workload adapters from `rablock-workload` generators onto the
//! simulation's per-connection interface, and result/CSV output helpers.
//!
//! ## Scaling
//!
//! The paper's testbed is 4 storage nodes × 8 OSDs × 44 logical cores with
//! 25 fio connections at queue depth 16×2. The simulation reproduces the
//! *architecture* at reduced scale — 4 nodes × 2 OSDs × 12 cores, 8–16
//! connections — so each harness finishes in seconds while preserving every
//! ratio the paper's claims rest on (who wins, by what factor, where the
//! knees are). Absolute IOPS are therefore lower than the paper's numbers
//! by roughly the scale factor; EXPERIMENTS.md records both.

#![warn(missing_docs)]

pub mod gz;
pub mod sweep;

use std::io::Write as _;
use std::path::PathBuf;

use rablock::sim::{ClusterSim, ClusterSimConfig, ConnWorkload, SimDuration, SimRng, WorkItem};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;
use rablock_workload::{AccessPattern, FioJob, WlKind, WlOp, YcsbWorkload};

/// Number of logical groups used by all harness clusters.
pub const PG_COUNT: u32 = 128;
/// Object size used by harness images (scaled from RBD's 4 MiB).
pub const OBJECT_BYTES: u64 = 1 << 20;

/// The scaled-down paper cluster: 4 nodes × 2 OSDs, replication 2.
pub fn paper_cluster(mode: PipelineMode) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(mode);
    cfg.nodes = 4;
    cfg.osds_per_node = 2;
    cfg.cores_per_node = 16;
    cfg.pg_count = PG_COUNT;
    cfg.replication = 2;
    cfg.osd = OsdConfig {
        mode,
        device_bytes: 192 << 20,
        nvm_bytes: 64 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 16,
        lsm: LsmOptions {
            memtable_bytes: 2 << 20,
            segment_bytes: 64 << 10,
            ..LsmOptions::default()
        },
        cos: CosOptions {
            partitions: 4,
            onode_slots: 4096,
            ..CosOptions::default()
        },
        ..OsdConfig::default()
    };
    cfg.messenger_threads = 3;
    cfg.pg_threads = 6;
    cfg.rtc_threads = 6;
    cfg.priority_threads = 6;
    cfg.non_priority_threads = 4;
    cfg.queue_depth = 16;
    cfg
}

/// The workload's shared view of the dataset: `images` images of
/// `image_bytes` each, striped into [`OBJECT_BYTES`] objects.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    /// Number of images (one per connection, like the paper's fio setup).
    pub images: u64,
    /// Bytes per image.
    pub image_bytes: u64,
}

impl Dataset {
    /// Default dataset: scaled from the paper's 30 GB images.
    pub fn default_for(conns: usize) -> Dataset {
        Dataset {
            images: conns as u64,
            image_bytes: 16 << 20,
        }
    }

    /// Objects per image.
    pub fn objects_per_image(&self) -> u64 {
        self.image_bytes.div_ceil(OBJECT_BYTES)
    }

    /// The object backing byte `offset` of `image`.
    pub fn object(&self, image: u64, offset: u64) -> (ObjectId, u64) {
        let idx = offset / OBJECT_BYTES;
        let within = offset % OBJECT_BYTES;
        // Spread (image, idx) over groups deterministically.
        let mut x = (image << 32) ^ idx;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        let group = GroupId((x % PG_COUNT as u64) as u32);
        // COS radix keys carry the object index in 32 bits; a 12-bit idx
        // field (4 GiB images) leaves 2^20 images for scale scenarios.
        debug_assert!(idx < (1 << 12) && image < (1 << 20));
        let index = (image << 12) | idx;
        (ObjectId::new(group, index), within)
    }

    /// Every object of every image with its size (prefill).
    pub fn all_objects(&self) -> Vec<(ObjectId, u64)> {
        let mut out = Vec::new();
        for image in 0..self.images {
            for idx in 0..self.objects_per_image() {
                let (oid, _) = self.object(image, idx * OBJECT_BYTES);
                out.push((oid, OBJECT_BYTES));
            }
        }
        out
    }

    /// Converts an abstract byte-space op on `image` into simulator work
    /// items, splitting at object boundaries.
    pub fn work_items(&self, image: u64, op: WlOp) -> Vec<WorkItem> {
        let mut out = Vec::new();
        let mut at = op.offset;
        let end = op.offset + op.len;
        while at < end {
            let (oid, within) = self.object(image, at);
            let chunk = (OBJECT_BYTES - within).min(end - at);
            out.push(match op.kind {
                WlKind::Write => WorkItem::Write {
                    oid,
                    offset: within,
                    len: chunk,
                    fill: (at % 251) as u8,
                },
                WlKind::Read => WorkItem::Read {
                    oid,
                    offset: within,
                    len: chunk,
                },
            });
            at += chunk;
        }
        out
    }
}

/// Adapts a fio job over one image into a simulation connection workload.
pub struct FioConn {
    dataset: Dataset,
    image: u64,
    job: FioJob,
    queue: Vec<WorkItem>,
}

impl FioConn {
    /// A connection driving `job` against `image` of `dataset`.
    pub fn new(dataset: Dataset, image: u64, job: FioJob) -> Self {
        FioConn {
            dataset,
            image,
            job,
            queue: Vec::new(),
        }
    }
}

impl ConnWorkload for FioConn {
    fn next(&mut self, rng: &mut SimRng) -> Option<WorkItem> {
        if let Some(item) = self.queue.pop() {
            return Some(item);
        }
        let op = self.job.next(rng)?;
        let mut items = self.dataset.work_items(self.image, op);
        items.reverse();
        let first = items.pop()?;
        self.queue = items;
        Some(first)
    }
}

/// Adapts a YCSB workload over one image into a connection workload.
pub struct YcsbConn {
    dataset: Dataset,
    image: u64,
    wl: YcsbWorkload,
    queue: Vec<WorkItem>,
    op_limit: Option<u64>,
    issued: u64,
}

impl YcsbConn {
    /// A connection driving `wl` against `image` of `dataset`.
    pub fn new(dataset: Dataset, image: u64, wl: YcsbWorkload) -> Self {
        YcsbConn {
            dataset,
            image,
            wl,
            queue: Vec::new(),
            op_limit: None,
            issued: 0,
        }
    }

    /// Caps the number of YCSB steps.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.op_limit = Some(limit);
        self
    }
}

impl ConnWorkload for YcsbConn {
    fn next(&mut self, rng: &mut SimRng) -> Option<WorkItem> {
        if let Some(item) = self.queue.pop() {
            return Some(item);
        }
        if let Some(limit) = self.op_limit {
            if self.issued >= limit {
                return None;
            }
        }
        self.issued += 1;
        let step = self.wl.next(rng);
        let mut items: Vec<WorkItem> = step
            .ops
            .iter()
            .flat_map(|op| self.dataset.work_items(self.image, *op))
            .collect();
        items.reverse();
        let first = items.pop()?;
        self.queue = items;
        Some(first)
    }
}

/// For sequential-read experiments (Fig. 9): write the whole image once
/// (so reads hit the device, not a sparse hole or a memtable), then read
/// 128 KiB blocks sequentially forever.
pub struct SeqWriteThenRead {
    dataset: Dataset,
    image: u64,
    cursor: u64,
    queue: Vec<WorkItem>,
}

impl SeqWriteThenRead {
    /// A connection priming `image` of `dataset` then reading it in a loop.
    pub fn new(dataset: Dataset, image: u64) -> Self {
        SeqWriteThenRead {
            dataset,
            image,
            cursor: 0,
            queue: Vec::new(),
        }
    }
}

impl ConnWorkload for SeqWriteThenRead {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        if let Some(item) = self.queue.pop() {
            return Some(item);
        }
        let blocks = self.dataset.image_bytes / (128 << 10);
        let phase_writes = blocks; // one full pass of writes first
        let (kind, block) = if self.cursor < phase_writes {
            (WlKind::Write, self.cursor)
        } else {
            (WlKind::Read, (self.cursor - phase_writes) % blocks)
        };
        self.cursor += 1;
        let op = WlOp {
            kind,
            offset: block * (128 << 10),
            len: 128 << 10,
        };
        let mut items = self.dataset.work_items(self.image, op);
        items.reverse();
        let first = items.pop()?;
        self.queue = items;
        Some(first)
    }
}

/// Process-wide default worker-shard count for harness simulations (the
/// `--shards N` flag). Shards only pick how many OS threads execute the
/// engine's domains — results are byte-identical for every value — so a
/// global default is safe: it can change wall-clock, never output.
static DEFAULT_SHARDS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

/// Sets the default shard count every subsequent [`run_sim`] uses (first
/// call wins; later calls are ignored). Harness `--shards N` flags call
/// this once at startup.
pub fn set_default_shards(shards: usize) {
    let _ = DEFAULT_SHARDS.set(shards.max(1));
}

/// The current default shard count (1 unless [`set_default_shards`] ran).
pub fn default_shards() -> usize {
    *DEFAULT_SHARDS.get().unwrap_or(&1)
}

/// Builds a cluster, prefills the dataset, runs warmup + measurement.
/// Configs that leave `shards` at 1 inherit the process default (the
/// `--shards` flag); an explicit per-config override wins.
pub fn run_sim(
    cfg: ClusterSimConfig,
    dataset: Dataset,
    workloads: Vec<Box<dyn ConnWorkload>>,
    warmup: SimDuration,
    measure: SimDuration,
) -> rablock::sim::SimReport {
    let mut cfg = cfg;
    if cfg.shards <= 1 {
        cfg.shards = default_shards();
    }
    let mut sim = ClusterSim::new(cfg, workloads);
    sim.prefill(&dataset.all_objects());
    sim.run(warmup, measure)
}

/// Default standard windows for the harnesses.
pub fn windows() -> (SimDuration, SimDuration) {
    (SimDuration::millis(40), SimDuration::millis(120))
}

/// Writes a CSV under `results/` at the workspace root, best-effort.
pub fn write_csv(name: &str, csv: &str) {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("results");
    if std::fs::create_dir_all(&path).is_err() {
        return;
    }
    path.push(format!("{name}.csv"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(csv.as_bytes());
        println!("[csv] {}", path.display());
    }
}

/// Standard banner for a harness.
pub fn banner(id: &str, what: &str) {
    println!("==============================================================");
    println!("{id}: {what}");
    println!("paper: ICDCS'21 'Re-architecting Distributed Block Storage…'");
    println!("==============================================================");
}

/// Pretty mode name matching the paper's terminology.
pub fn mode_name(mode: PipelineMode) -> &'static str {
    match mode {
        PipelineMode::Original => "Original",
        PipelineMode::RtcV1 => "RTC-v1",
        PipelineMode::RtcV2 => "RTC-v2",
        PipelineMode::RtcV3 => "RTC-v3",
        PipelineMode::Cos => "COS",
        PipelineMode::Ptc => "PTC",
        PipelineMode::Dop => "DOP (Proposed)",
        PipelineMode::Ideal => "Ideal",
    }
}

/// A 4 KiB random-write fio connection set (Figures 1, 7, 11; Tables I, II).
pub fn randwrite_conns(dataset: Dataset, conns: usize) -> Vec<Box<dyn ConnWorkload>> {
    (0..conns)
        .map(|c| {
            let job = FioJob::new(AccessPattern::RandWrite, 4096, dataset.image_bytes);
            Box::new(FioConn::new(dataset, c as u64 % dataset.images, job)) as Box<dyn ConnWorkload>
        })
        .collect()
}

/// A 4 KiB random-read fio connection set (Fig. 7-b).
pub fn randread_conns(dataset: Dataset, conns: usize) -> Vec<Box<dyn ConnWorkload>> {
    (0..conns)
        .map(|c| {
            let job = FioJob::new(AccessPattern::RandRead, 4096, dataset.image_bytes);
            Box::new(FioConn::new(dataset, c as u64 % dataset.images, job)) as Box<dyn ConnWorkload>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_objects_cover_images() {
        let d = Dataset {
            images: 2,
            image_bytes: 3 << 20,
        };
        assert_eq!(d.all_objects().len(), 6);
    }

    #[test]
    fn work_items_split_at_object_boundary() {
        let d = Dataset {
            images: 1,
            image_bytes: 4 << 20,
        };
        let op = WlOp {
            kind: WlKind::Write,
            offset: OBJECT_BYTES - 100,
            len: 300,
        };
        let items = d.work_items(0, op);
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn fio_conn_emits_items() {
        let d = Dataset::default_for(1);
        let job = FioJob::new(AccessPattern::RandWrite, 4096, d.image_bytes);
        let mut conn = FioConn::new(d, 0, job);
        let mut rng = SimRng::seed(1);
        for _ in 0..100 {
            assert!(conn.next(&mut rng).is_some());
        }
    }
}
