//! Minimal gzip (RFC 1952) + DEFLATE (RFC 1951), implemented by hand.
//!
//! The build environment is offline and the workspace vendors no
//! compression crate, yet committed trace artifacts (hundreds of KiB of
//! Perfetto JSON) bloat every checkout. This module is just enough codec to
//! fix that: a fixed-Huffman greedy-LZ77 compressor for writing artifacts,
//! and a full inflater (stored, fixed and dynamic blocks) so artifacts
//! written by stock `gzip` read back too.
//!
//! Determinism matters more than ratio here: the emitted stream depends
//! only on the input bytes (header MTIME is pinned to zero, no OS byte
//! leakage, greedy matching has no tie-breaking randomness), so CI can
//! `cmp` two compressed artifacts the same way it compares the raw JSON.

/// CRC-32/ISO-HDLC (the gzip checksum), bitwise-reflected, table-driven.
fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut n = 0;
        while n < 256 {
            let mut c = n as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[n] = c;
            n += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --------------------------------------------------------------------------
// Bit I/O. DEFLATE packs bits LSB-first within bytes; Huffman codes go in
// MSB-first (reversed), everything else LSB-first.
// --------------------------------------------------------------------------

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    /// Append `n` bits of `v`, LSB-first.
    fn bits(&mut self, v: u32, n: u32) {
        self.acc |= (v as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Append a Huffman code: `n`-bit `code` given MSB-first, as DEFLATE
    /// specifies code transmission.
    fn huff(&mut self, code: u32, n: u32) {
        let mut rev = 0u32;
        for i in 0..n {
            rev |= ((code >> i) & 1) << (n - 1 - i);
        }
        self.bits(rev, n);
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn take(&mut self, n: u32) -> Result<u32, String> {
        while self.nbits < n {
            let b = *self
                .data
                .get(self.pos)
                .ok_or_else(|| "deflate stream truncated".to_string())?;
            self.pos += 1;
            self.acc |= (b as u64) << self.nbits;
            self.nbits += 8;
        }
        let v = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Discard partial-byte state (stored-block alignment).
    fn align(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Bytes consumed so far (only meaningful when byte-aligned).
    fn byte_pos(&self) -> usize {
        self.pos - (self.nbits / 8) as usize
    }

    fn skip_bytes(&mut self, n: usize) -> Result<(), String> {
        debug_assert_eq!(self.nbits, 0);
        if self.pos + n > self.data.len() {
            return Err("deflate stream truncated".into());
        }
        self.pos += n;
        Ok(())
    }
}

// --------------------------------------------------------------------------
// RFC 1951 symbol tables.
// --------------------------------------------------------------------------

/// Length code N (257-285): (base length, extra bits).
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// Distance code N (0-29): (base distance, extra bits).
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Order in which code-length-code lengths are transmitted (dynamic blocks).
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn length_code(len: u16) -> (u16, u16, u8) {
    debug_assert!((3..=258).contains(&len));
    for (i, &(base, extra)) in LEN_TABLE.iter().enumerate().rev() {
        if len >= base {
            return (257 + i as u16, len - base, extra);
        }
    }
    unreachable!("length below 3");
}

fn dist_code(dist: u16) -> (u16, u16, u8) {
    debug_assert!(dist >= 1);
    for (i, &(base, extra)) in DIST_TABLE.iter().enumerate().rev() {
        if dist >= base {
            return (i as u16, dist - base, extra);
        }
    }
    unreachable!("distance below 1");
}

/// Fixed-Huffman litlen code for symbol `s` (RFC 1951 §3.2.6).
fn fixed_litlen(s: u16) -> (u32, u32) {
    match s {
        0..=143 => (0x30 + s as u32, 8),
        144..=255 => (0x190 + (s - 144) as u32, 9),
        256..=279 => ((s - 256) as u32, 7),
        _ => (0xC0 + (s - 280) as u32, 8),
    }
}

// --------------------------------------------------------------------------
// Compressor: greedy hash-chain LZ77 into one fixed-Huffman block.
// --------------------------------------------------------------------------

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Hash-chain probe bound: enough for good ratios on JSON/CSV text without
/// quadratic blowup on highly repetitive inputs.
const MAX_CHAIN: usize = 64;

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x7F4A));
    (h as usize) & (HASH_SLOTS - 1)
}

const HASH_SLOTS: usize = 1 << 15;

fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.bits(1, 1); // BFINAL
    w.bits(1, 2); // BTYPE=01 fixed Huffman

    let mut head = vec![usize::MAX; HASH_SLOTS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let (lcode, lextra, lbits) = length_code(best_len as u16);
            let (code, bits) = fixed_litlen(lcode);
            w.huff(code, bits);
            if lbits > 0 {
                w.bits(lextra as u32, lbits as u32);
            }
            let (dcode, dextra, dbits) = dist_code(best_dist as u16);
            w.huff(dcode as u32, 5);
            if dbits > 0 {
                w.bits(dextra as u32, dbits as u32);
            }
            // Insert every position of the match into the chains so later
            // occurrences can still find them.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash3(data, i);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            let (code, bits) = fixed_litlen(data[i] as u16);
            w.huff(code, bits);
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    let (eob, eob_bits) = fixed_litlen(256);
    w.huff(eob, eob_bits);
    w.finish()
}

// --------------------------------------------------------------------------
// Inflater: canonical-Huffman decode (puff-style), all three block types.
// --------------------------------------------------------------------------

/// Canonical Huffman decoding table: symbol counts per code length plus
/// symbols sorted by (length, symbol order).
struct Huffman {
    count: [u16; 16],
    symbols: Vec<u16>,
}

impl Huffman {
    fn build(lengths: &[u8]) -> Result<Huffman, String> {
        let mut count = [0u16; 16];
        for &l in lengths {
            if l > 15 {
                return Err(format!("code length {l} out of range"));
            }
            count[l as usize] += 1;
        }
        // Over-subscribed codes are invalid; incomplete ones are tolerated
        // (single-symbol distance codes appear in real streams).
        let mut left = 1i32;
        for &n in &count[1..] {
            left = (left << 1) - n as i32;
            if left < 0 {
                return Err("over-subscribed Huffman code".into());
            }
        }
        let mut offs = [0u16; 16];
        for len in 1..15 {
            offs[len + 1] = offs[len] + count[len];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l > 0).count()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[offs[l as usize] as usize] = sym as u16;
                offs[l as usize] += 1;
            }
        }
        Ok(Huffman { count, symbols })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, String> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= r.take(1)? as i32;
            let n = self.count[len] as i32;
            if code - first < n {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += n;
            first = (first + n) << 1;
            code <<= 1;
        }
        Err("invalid Huffman code".into())
    }
}

fn fixed_tables() -> (Huffman, Huffman) {
    let mut litlen = [0u8; 288];
    for (s, l) in litlen.iter_mut().enumerate() {
        *l = match s {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist = [5u8; 30];
    (
        Huffman::build(&litlen).expect("fixed litlen table"),
        Huffman::build(&dist).expect("fixed dist table"),
    )
}

fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.take(1)?;
        let btype = r.take(2)?;
        match btype {
            0 => {
                r.align();
                let start = r.byte_pos();
                if start + 4 > data.len() {
                    return Err("stored block header truncated".into());
                }
                let len = u16::from_le_bytes([data[start], data[start + 1]]) as usize;
                let nlen = u16::from_le_bytes([data[start + 2], data[start + 3]]);
                if nlen != !(len as u16) {
                    return Err("stored block LEN/NLEN mismatch".into());
                }
                // Re-sync the reader past the header + payload.
                r = BitReader::new(data);
                r.pos = start + 4;
                if r.pos + len > data.len() {
                    return Err("stored block truncated".into());
                }
                out.extend_from_slice(&data[r.pos..r.pos + len]);
                r.skip_bytes(len)?;
            }
            1 | 2 => {
                let (litlen, dist) = if btype == 1 {
                    fixed_tables()
                } else {
                    read_dynamic_tables(&mut r)?
                };
                loop {
                    let sym = litlen.decode(&mut r)?;
                    match sym {
                        0..=255 => out.push(sym as u8),
                        256 => break,
                        257..=285 => {
                            let (base, extra) = LEN_TABLE[(sym - 257) as usize];
                            let len = base as usize + r.take(extra as u32)? as usize;
                            let dsym = dist.decode(&mut r)? as usize;
                            if dsym >= 30 {
                                return Err("invalid distance symbol".into());
                            }
                            let (dbase, dextra) = DIST_TABLE[dsym];
                            let d = dbase as usize + r.take(dextra as u32)? as usize;
                            if d > out.len() {
                                return Err("distance past output start".into());
                            }
                            let from = out.len() - d;
                            for k in 0..len {
                                let b = out[from + k];
                                out.push(b);
                            }
                        }
                        _ => return Err(format!("invalid litlen symbol {sym}")),
                    }
                }
            }
            _ => return Err("reserved block type".into()),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Huffman, Huffman), String> {
    let hlit = r.take(5)? as usize + 257;
    let hdist = r.take(5)? as usize + 1;
    let hclen = r.take(4)? as usize + 4;
    let mut clc_lengths = [0u8; 19];
    for &slot in CLC_ORDER.iter().take(hclen) {
        clc_lengths[slot] = r.take(3)? as u8;
    }
    let clc = Huffman::build(&clc_lengths)?;
    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err("repeat with no previous length".into());
                }
                let prev = lengths[i - 1];
                let n = 3 + r.take(2)? as usize;
                for _ in 0..n {
                    if i >= lengths.len() {
                        return Err("length repeat overflows table".into());
                    }
                    lengths[i] = prev;
                    i += 1;
                }
            }
            17 | 18 => {
                let n = if sym == 17 {
                    3 + r.take(3)? as usize
                } else {
                    11 + r.take(7)? as usize
                };
                if i + n > lengths.len() {
                    return Err("zero-run overflows table".into());
                }
                i += n;
            }
            _ => return Err(format!("invalid code-length symbol {sym}")),
        }
    }
    if lengths[256] == 0 {
        return Err("dynamic block without end-of-block code".into());
    }
    let litlen = Huffman::build(&lengths[..hlit])?;
    let dist = Huffman::build(&lengths[hlit..])?;
    Ok((litlen, dist))
}

// --------------------------------------------------------------------------
// RFC 1952 container.
// --------------------------------------------------------------------------

/// Compress `data` into a deterministic gzip member (MTIME pinned to 0,
/// OS byte 255 "unknown") — same input, same bytes, forever.
pub fn gzip(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 3 + 32);
    out.extend_from_slice(&[0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF]);
    out.extend_from_slice(&deflate_fixed(data));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompress one gzip member, verifying the trailer CRC32 and length.
/// Handles streams from this module and from stock `gzip` (dynamic-Huffman
/// blocks, FNAME/FEXTRA/FCOMMENT/FHCRC header fields).
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 18 {
        return Err("gzip stream too short".into());
    }
    if data[0] != 0x1F || data[1] != 0x8B {
        return Err("bad gzip magic".into());
    }
    if data[2] != 8 {
        return Err(format!("unsupported compression method {}", data[2]));
    }
    let flags = data[3];
    let mut pos = 10;
    if flags & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err("gzip FEXTRA truncated".into());
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for mask in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flags & mask != 0 {
            while *data.get(pos).ok_or("gzip header truncated")? != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flags & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if pos + 8 > data.len() {
        return Err("gzip stream truncated".into());
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate(body)?;
    let tail = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let want_len = u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]);
    if crc32(&out) != want_crc {
        return Err("gzip CRC mismatch".into());
    }
    if out.len() as u32 != want_len {
        return Err("gzip length mismatch".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn crc32_check_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_assorted_inputs() {
        let mut inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"hello, hello, hello".to_vec(),
            vec![0u8; 100_000],
            (0..=255u8).cycle().take(70_000).collect(),
        ];
        // JSON-ish text: the actual artifact shape this module exists for.
        let mut json = String::from("{\"traceEvents\":[");
        for i in 0..2000 {
            json.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":1,\"name\":\"op{i}\",\"ts\":{},\"dur\":{}}},",
                i * 17,
                i % 97
            ));
        }
        json.push_str("{}]}");
        inputs.push(json.into_bytes());
        // Incompressible noise must survive too (expands slightly; fine).
        let mut s = 7u64;
        inputs.push(
            (0..50_000)
                .map(|_| (splitmix(&mut s) & 0xFF) as u8)
                .collect(),
        );

        for input in &mut inputs {
            let packed = gzip(input);
            let back = gunzip(&packed).expect("roundtrip");
            assert_eq!(&back, input, "len {}", input.len());
        }
    }

    #[test]
    fn compresses_repetitive_text() {
        let data = b"the quick brown fox ".repeat(5000);
        let packed = gzip(&data);
        assert!(
            packed.len() < data.len() / 10,
            "repetitive text compresses hard: {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn deterministic_output() {
        let data = b"determinism is the whole point".repeat(100);
        assert_eq!(gzip(&data), gzip(&data));
    }

    #[test]
    fn rejects_corruption_and_truncation() {
        let data = b"some payload worth protecting".repeat(50);
        let packed = gzip(&data);
        // Flip one payload bit: CRC (or the decode itself) must reject.
        for &at in &[12usize, packed.len() / 2, packed.len() - 5] {
            let mut bad = packed.clone();
            bad[at] ^= 0x40;
            assert!(gunzip(&bad).is_err(), "bit flip at {at} must not decode");
        }
        assert!(gunzip(&packed[..packed.len() - 3]).is_err());
        assert!(gunzip(&packed[..5]).is_err());
        let mut wrong_magic = packed;
        wrong_magic[0] = 0x1E;
        assert!(gunzip(&wrong_magic).is_err());
    }

    #[test]
    fn decodes_stored_blocks() {
        // Hand-assembled gzip member with one stored block.
        let payload = b"stored block payload";
        let mut raw = vec![0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF];
        raw.push(0x01); // BFINAL=1, BTYPE=00
        raw.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        raw.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        raw.extend_from_slice(payload);
        raw.extend_from_slice(&crc32(payload).to_le_bytes());
        raw.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gunzip(&raw).unwrap(), payload);
    }
}
