//! Wall-clock throughput harness for the simulator itself.
//!
//! Every figure harness drives the sans-io OSD core through the DES engine,
//! so the wall-clock speed of that loop bounds how much of the parameter
//! space a sweep can cover. This binary measures it directly: it runs the
//! fig7 4 KiB random-write scenario, a chaos (fault-injection) scenario,
//! and a grow-4->8->64 elastic-expansion scenario
//! under `std::time::Instant` and reports
//!
//! * **events/sec** — scheduler work items executed per wall-clock second
//!   (`SimReport::events_processed` over the timed `run` call), and
//! * **sim-ops/sec** — completed simulated client operations per wall-clock
//!   second.
//!
//! Each scenario is also run twice with the same seed as a determinism
//! guard: the full metric fingerprint (counters, latency percentiles, CPU%
//! per stage, HistoryChecker verdicts) must be byte-identical, so a perf
//! change that altered simulated results would fail here first.
//!
//! Usage:
//!
//! ```text
//! wallclock [--label before|after] [--iters N] [--smoke] [--only NAME]
//!           [--sched wheel|heap] [--sweep] [--jobs N] [--trace-out PATH]
//!           [--shards N] [--scale-curve] [--check-jobs]
//! ```
//!
//! `--shards N` sets how many worker threads execute the engine's
//! space-parallel domains (clients+monitor in domain 0, one domain per
//! storage node). The partition is fixed at construction and the
//! cross-domain merge order is total, so every fingerprint printed here is
//! byte-identical for every N — CI diffs `--shards 1/2/4` runs to prove it.
//!
//! `--scale-curve` runs the 256-OSD (32 nodes x 8 OSDs), 10 000-connection
//! 4 KiB random-write scenario at shards 1, 2, 4, and 8, asserts all four
//! fingerprints are identical, and (unless `--smoke`) writes the scaling
//! curve to `BENCH_pr10.json` with the host core count — speedup is only
//! meaningful relative to the cores the run actually had.
//!
//! `--check-jobs` runs the smoke figure sweep at `--jobs 1` and `--jobs 2`
//! and asserts the two-job run is not slower (beyond a noise tolerance):
//! the longest-cell-first schedule plus share-nothing workers must never
//! lose to the sequential order, even on a single hardware thread.
//!
//! `--trace-out PATH` re-runs each selected scenario with tracing and
//! windowed telemetry armed, asserts the traced fingerprint is identical
//! to the untraced one (tracing is passive by construction), and writes a
//! Perfetto-loadable Chrome trace JSON plus `.telemetry.csv` /
//! `.attribution.csv` siblings. With `--only NAME` the JSON lands at PATH
//! exactly; otherwise each scenario gets a `-<name>` suffix. A PATH ending
//! in `.gz` writes the JSON gzipped (deterministically — see the `gzpack`
//! bin to unpack); the CSV siblings stay plain.
//!
//! The grow scenario also reports the write-tail degradation window: its
//! p99 write latency next to the p99 of a churn-free control run on the
//! same 64-OSD topology, so a regression in rebalance interference shows
//! up as a ratio change in the committed numbers.
//!
//! With `--label`, results are merged into `BENCH_pr6.json` at the
//! workspace root (runs with the same label are replaced, other labels are
//! kept, so "before" and "after" from the same machine live side by side).
//! `--smoke` runs a seconds-scale sweep and writes nothing. `--sched`
//! overrides the event-queue implementation at runtime (the compile-time
//! `heap-sched` feature only flips the default); each scenario prints its
//! scheduler and a fingerprint hash so CI can diff the two. `--sweep`
//! replaces the fig7/chaos pair with the full figure grid run on `--jobs`
//! worker threads (see the `figures` binary for the figure-facing variant).

use std::path::PathBuf;
use std::time::Instant;

use rablock::sim::{
    ChurnOp, ClusterSim, ClusterSimConfig, ConnWorkload, CrashSchedule, FaultPlan, GrayWindow,
    LinkFault, Partition, RetryPolicy, SchedulerKind, SimDuration, SimReport, SimRng, SimTime,
    WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_bench::sweep::{figure_cells, run_sweep};
use rablock_bench::{banner, paper_cluster, randwrite_conns, Dataset};
use rablock_cluster::osd::OsdConfig;
use rablock_cluster::placement::DEFAULT_OSD_WEIGHT;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

/// One timed scenario run.
struct Sample {
    wall_secs: f64,
    events: u64,
    sim_writes: u64,
    sim_reads: u64,
    /// p99 write latency of the run, in simulated nanoseconds.
    p99_write_ns: u64,
    /// p99.9 write latency — the deep 4 KiB random-write tail that churn
    /// moves first (invisible at p99 until the storm is severe).
    p999_write_ns: u64,
    /// For the grow scenario: p99 of the churn-free control run on the
    /// same topology, framing the expansion's tail-latency degradation.
    baseline_p99_write_ns: Option<u64>,
}

/// Deterministic per-run observability artifacts (`--trace-out`).
struct TraceOut {
    /// Chrome trace-event JSON (Perfetto-loadable): slow-op span trees
    /// plus the telemetry counter tracks.
    chrome_json: String,
    /// Windowed telemetry time-series as CSV.
    telemetry_csv: String,
    /// Per-component latency attribution, pre-rendered as CSV rows.
    attribution_csv: String,
}

/// Renders a report's attribution breakdown as CSV (component per row).
fn attribution_csv(r: &SimReport) -> String {
    let mut out = String::from("component,mean_ns,p50_ns,p95_ns,p99_ns,p999_ns,total_ns,share\n");
    if let Some(att) = &r.attribution {
        for (comp, lat, total) in &att.components {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.4}\n",
                comp.name(),
                lat.mean.as_nanos(),
                lat.p50.as_nanos(),
                lat.p95.as_nanos(),
                lat.p99.as_nanos(),
                lat.p999.as_nanos(),
                total,
                att.share(*comp),
            ));
        }
    }
    out
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }

    fn sim_ops_per_sec(&self) -> f64 {
        (self.sim_writes + self.sim_reads) as f64 / self.wall_secs
    }
}

/// Everything the simulation is allowed to vary by: nothing. Two runs of
/// the same scenario must produce identical fingerprints.
fn fingerprint(r: &SimReport, checker: Option<(u64, u64)>) -> Vec<u64> {
    let mut v = vec![
        r.duration.as_nanos(),
        r.writes_done,
        r.reads_done,
        r.write_iops.to_bits(),
        r.read_iops.to_bits(),
        r.context_switches,
        r.events_processed,
        r.nvm_bytes,
        r.nvm_full_stalls,
        r.client_errors,
        r.queue_high_water,
        r.recovery_pushes,
        r.backfill_bytes,
        r.backfill_queued,
        r.backfill_throttled_nanos,
        r.flaps_damped,
    ];
    // Named-field latency summaries, flattened in a fixed order. The
    // attribution report is deliberately NOT part of the fingerprint: it
    // only exists when tracing is on, and the fingerprint must be identical
    // tracing on or off.
    let wf = r.write_lat.fields();
    let rf = r.read_lat.fields();
    v.extend(wf.iter().chain(rf.iter()).map(|d| d.as_nanos()));
    v.extend(r.node_cpu_pct.iter().map(|p| p.to_bits()));
    v.extend(r.tag_cpu_pct.values().map(|p| p.to_bits()));
    v.extend(r.class_cpu_pct.values().map(|p| p.to_bits()));
    v.extend([
        r.store.user_bytes,
        r.store.wal_bytes,
        r.store.flush_bytes,
        r.store.compaction_bytes,
        r.store.data_bytes,
        r.store.metadata_bytes,
        r.store.superblock_bytes,
        r.store.read_bytes,
        r.store.transactions,
    ]);
    v.extend([
        r.device.reads,
        r.device.writes,
        r.device.flushes,
        r.device.bytes_read,
        r.device.bytes_written,
        r.device.total_latency_ns,
    ]);
    if let Some((acked, checked)) = checker {
        v.extend([acked, checked]);
    }
    v
}

/// FNV-1a over the fingerprint words: a single hash line CI can diff
/// between scheduler implementations and feature builds.
fn fp_hash(fp: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in fp {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

/// Arms tracing + windowed telemetry on a config (`--trace-out` runs).
fn arm_trace(cfg: &mut ClusterSimConfig) {
    cfg.trace = true;
    cfg.telemetry_window = Some(SimDuration::millis(2));
}

/// Extracts the observability artifacts after a traced run.
fn trace_out(sim: &ClusterSim, report: &SimReport) -> TraceOut {
    TraceOut {
        chrome_json: sim.trace_chrome_json().expect("tracing armed"),
        telemetry_csv: sim.telemetry_csv(),
        attribution_csv: attribution_csv(report),
    }
}

/// The fig7 4 KiB random-write scenario at the paper-cluster scale.
fn run_fig7(
    measure: SimDuration,
    sched: SchedulerKind,
    shards: usize,
    trace: bool,
) -> (Sample, Vec<u64>, Option<TraceOut>) {
    const CONNS: usize = 16;
    let dataset = Dataset::default_for(CONNS);
    let mut cfg = paper_cluster(PipelineMode::Dop);
    cfg.scheduler = sched;
    cfg.shards = shards;
    if trace {
        arm_trace(&mut cfg);
    }
    let mut sim = ClusterSim::new(cfg, randwrite_conns(dataset, CONNS));
    sim.prefill(&dataset.all_objects());
    let t = Instant::now();
    let report = sim.run(SimDuration::ZERO, measure);
    let wall_secs = t.elapsed().as_secs_f64();
    let fp = fingerprint(&report, None);
    let out = trace.then(|| trace_out(&sim, &report));
    (
        Sample {
            wall_secs,
            events: report.events_processed,
            sim_writes: report.writes_done,
            sim_reads: report.reads_done,
            p99_write_ns: report.write_lat.p99.as_nanos(),
            p999_write_ns: report.write_lat.p999.as_nanos(),
            baseline_p99_write_ns: None,
        },
        fp,
        out,
    )
}

const CHAOS_PGS: u32 = 8;
const CHAOS_CONNS: u64 = 4;
const CHAOS_WRITES_PER_CONN: u64 = 400;
const CHAOS_READS_PER_CONN: u64 = 100;

fn chaos_oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % CHAOS_PGS as u64) as u32), i)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

struct ChaosConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for ChaosConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < CHAOS_WRITES_PER_CONN {
            let k = i % 8;
            let block = (i / 8) % 16;
            Some(WorkItem::Write {
                oid: chaos_oid(self.conn, k),
                offset: block * 4096,
                len: 4096,
                fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
            })
        } else if i < CHAOS_WRITES_PER_CONN + CHAOS_READS_PER_CONN {
            let j = i - CHAOS_WRITES_PER_CONN;
            Some(WorkItem::Read {
                oid: chaos_oid(self.conn, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

/// A fixed chaos scenario: drops, duplicates, reordering, a partition, a
/// gray device, and a crash/restart with a torn NVM tail — with client
/// retries, heartbeat failure detection, and the history checker armed.
fn chaos_config() -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = 3;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = CHAOS_PGS;
    cfg.queue_depth = 4;
    cfg.seed = 0xC0FFEE;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    cfg.faults = FaultPlan::none()
        .with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(10_000),
            drop_p: 0.01,
            dup_p: 0.005,
            reorder_p: 0.05,
            reorder_max: SimDuration::nanos(200_000),
            spike_p: 0.02,
            spike: SimDuration::nanos(500_000),
        })
        .with_partition(Partition {
            a: 0,
            b: 1,
            from: ms(8),
            until: ms(18),
        })
        .with_gray_window(GrayWindow {
            device: 1,
            from: ms(2),
            until: ms(25),
            multiplier: 8.0,
        })
        .with_crash(CrashSchedule {
            process: 0,
            at: ms(6),
            restart_at: Some(ms(40)),
            torn_tail: true,
        });
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    cfg
}

fn run_chaos(
    measure: SimDuration,
    sched: SchedulerKind,
    shards: usize,
    trace: bool,
) -> (Sample, Vec<u64>, Option<TraceOut>) {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CHAOS_CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut cfg = chaos_config();
    cfg.scheduler = sched;
    cfg.shards = shards;
    if trace {
        arm_trace(&mut cfg);
    }
    let mut sim = ClusterSim::new(cfg, wl);
    let objects: Vec<(ObjectId, u64)> = (0..CHAOS_CONNS)
        .flat_map(|c| (0..8).map(move |k| (chaos_oid(c, k), 1 << 20)))
        .collect();
    sim.prefill(&objects);
    let t = Instant::now();
    let report = sim.run(SimDuration::ZERO, measure);
    let wall_secs = t.elapsed().as_secs_f64();
    let checker = sim.checker().expect("history checking enabled");
    let fp = fingerprint(
        &report,
        Some((checker.writes_acked(), checker.reads_checked())),
    );
    let out = trace.then(|| trace_out(&sim, &report));
    (
        Sample {
            wall_secs,
            events: report.events_processed,
            sim_writes: report.writes_done,
            sim_reads: report.reads_done,
            p99_write_ns: report.write_lat.p99.as_nanos(),
            p999_write_ns: report.write_lat.p999.as_nanos(),
            baseline_p99_write_ns: None,
        },
        fp,
        out,
    )
}

// Grow scenario: 16 nodes x 4 OSDs pre-provisioned, 4 in service at start,
// woven up to 8 and then all 64 by weight churn while the workload runs.
const GROW_NODES: u32 = 16;
const GROW_OSDS_PER_NODE: u32 = 4;
const GROW_OSDS: u32 = GROW_NODES * GROW_OSDS_PER_NODE;
const GROW_PGS: u32 = 32;
const GROW_CONNS: u64 = 3;

fn grow_oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % GROW_PGS as u64) as u32), i)
}

/// Endless 4 KiB writer over the connection's 8-object namespace: unlike
/// the fixed-op correctness twin in `tests/chaos.rs`, the bench load never
/// drains, so both expansion windows and the warmed-up control measure a
/// cluster under constant pressure.
struct GrowConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for GrowConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        let k = i % 8;
        let block = (i / 8) % 16;
        Some(WorkItem::Write {
            oid: grow_oid(self.conn, k),
            offset: block * 4096,
            len: 4096,
            fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
        })
    }
}

/// The grow-4->8->64-under-load configuration. With `churn` false the same
/// 64-OSD topology runs fully in service from the start — the control whose
/// p99 frames the expansion's degradation window.
fn grow_config(churn: bool) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = GROW_NODES;
    cfg.osds_per_node = GROW_OSDS_PER_NODE;
    cfg.cores_per_node = 6;
    cfg.priority_threads = 1;
    cfg.non_priority_threads = 2;
    cfg.pg_count = GROW_PGS;
    cfg.queue_depth = 4;
    cfg.seed = 0xE1A5;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 32 << 20,
        nvm_bytes: 4 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        max_backfill_inflight: 2,
        backfill_bytes_per_tick: 1 << 20,
        ..OsdConfig::default()
    };
    // No link noise here, unlike the chaos.rs correctness twin: random
    // drops put 10 ms retry timeouts in both tails and would swamp the
    // expansion's own interference, which is the thing being measured.
    cfg.faults = FaultPlan::none();
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    if churn {
        let seed_osds = [0u32, 4, 8, 12];
        let second = [16u32, 20, 24, 28];
        cfg.initially_out = (0..GROW_OSDS)
            .filter(|id| !seed_osds.contains(id))
            .collect();
        let mut ops: Vec<ChurnOp> = second
            .iter()
            .map(|&osd| ChurnOp {
                at: ms(8),
                osd,
                weight: DEFAULT_OSD_WEIGHT,
            })
            .collect();
        let rest = (0..GROW_OSDS).filter(|id| !seed_osds.contains(id) && !second.contains(id));
        ops.extend(rest.enumerate().map(|(i, osd)| ChurnOp {
            at: ms(20) + SimDuration::nanos(100_000) * i as u64,
            osd,
            weight: DEFAULT_OSD_WEIGHT,
        }));
        cfg.churn = ops;
    }
    cfg
}

fn run_grow(
    measure: SimDuration,
    sched: SchedulerKind,
    shards: usize,
    churn: bool,
    trace: bool,
) -> (Sample, Vec<u64>, Option<TraceOut>) {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..GROW_CONNS)
        .map(|c| Box::new(GrowConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut cfg = grow_config(churn);
    cfg.scheduler = sched;
    cfg.shards = shards;
    if trace {
        arm_trace(&mut cfg);
    }
    let mut sim = ClusterSim::new(cfg, wl);
    let objects: Vec<(ObjectId, u64)> = (0..GROW_CONNS)
        .flat_map(|c| (0..8).map(move |k| (grow_oid(c, k), 256 << 10)))
        .collect();
    sim.prefill(&objects);
    // The churn run measures from t0 so the expansion windows (8 ms and
    // 20 ms) land inside the percentile frame. The control warms up past
    // the 64-OSD heartbeat-staggering transient and measures steady state,
    // making its p99 the clean baseline the degradation is judged against.
    let warmup = if churn {
        SimDuration::ZERO
    } else {
        SimDuration::millis(25)
    };
    let t = Instant::now();
    let report = sim.run(warmup, measure);
    let wall_secs = t.elapsed().as_secs_f64();
    let checker = sim.checker().expect("history checking enabled");
    let fp = fingerprint(
        &report,
        Some((checker.writes_acked(), checker.reads_checked())),
    );
    let out = trace.then(|| trace_out(&sim, &report));
    (
        Sample {
            wall_secs,
            events: report.events_processed,
            sim_writes: report.writes_done,
            sim_reads: report.reads_done,
            p99_write_ns: report.write_lat.p99.as_nanos(),
            p999_write_ns: report.write_lat.p999.as_nanos(),
            baseline_p99_write_ns: None,
        },
        fp,
        out,
    )
}

// Scale scenario (`--scale-curve`): the issue's target shape — 256 OSDs
// (32 nodes x 8 OSDs) under 10 000 client connections of 4 KiB random
// writes. One image (= one 1 MiB object namespace) per connection keeps
// the prefill proportional to the connection count.
const SCALE_NODES: u32 = 32;
const SCALE_OSDS_PER_NODE: u32 = 8;
const SCALE_CONNS: usize = 10_000;

fn scale_config(shards: usize) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = SCALE_NODES;
    cfg.osds_per_node = SCALE_OSDS_PER_NODE;
    // 8 OSDs x 2 pinned priority threads + a shared pool, matching the
    // paper testbed's 44-logical-core nodes in spirit.
    cfg.cores_per_node = 24;
    cfg.pg_count = 512;
    cfg.replication = 2;
    cfg.queue_depth = 2;
    cfg.seed = 0x5CA1E;
    cfg.messenger_threads = 2;
    cfg.pg_threads = 2;
    cfg.rtc_threads = 2;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 2;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        // MemDisk pages lazily (vec![0; n] = untouched zero pages), so a
        // roomy device is cheap; PG-placement skew can pile ~3x the mean
        // PG count onto one OSD and the hash can pile those PGs onto one
        // partition, so each partition needs slack over the ~20 MiB mean.
        device_bytes: 512 << 20,
        nvm_bytes: 16 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        // ~156 objects land on each OSD (10k objects x 2 replicas over
        // 256 OSDs); tiny()'s 128 onode slots are too few.
        cos: CosOptions {
            partitions: 4,
            onode_slots: 1024,
            ..CosOptions::tiny()
        },
        ..OsdConfig::default()
    };
    cfg.shards = shards;
    cfg
}

/// One point of the shard-scaling curve. Prefill happens outside the
/// timed window; the timer brackets only the DES `run` call.
fn run_scale(measure: SimDuration, sched: SchedulerKind, shards: usize) -> (Sample, Vec<u64>) {
    let dataset = Dataset {
        images: SCALE_CONNS as u64,
        image_bytes: 256 << 10,
    };
    let mut cfg = scale_config(shards);
    cfg.scheduler = sched;
    let mut sim = ClusterSim::new(cfg, randwrite_conns(dataset, SCALE_CONNS));
    // One 256 KiB object per connection, sized to the image (not the
    // 1 MiB stripe default): 20 000 replicas over 256 OSDs have to fit
    // the partition the group hash picks, with skew headroom.
    let objects: Vec<(ObjectId, u64)> = (0..dataset.images)
        .map(|image| (dataset.object(image, 0).0, dataset.image_bytes))
        .collect();
    sim.prefill(&objects);
    let t = Instant::now();
    let report = sim.run(SimDuration::ZERO, measure);
    let wall_secs = t.elapsed().as_secs_f64();
    let fp = fingerprint(&report, None);
    (
        Sample {
            wall_secs,
            events: report.events_processed,
            sim_writes: report.writes_done,
            sim_reads: report.reads_done,
            p99_write_ns: report.write_lat.p99.as_nanos(),
            p999_write_ns: report.write_lat.p999.as_nanos(),
            baseline_p99_write_ns: None,
        },
        fp,
    )
}

/// Writes the shard-scaling curve to `BENCH_pr10.json`. The host core
/// count is part of the record: a speedup number is meaningless without
/// knowing how many hardware threads the run actually had, and a 1-core
/// host can only show the synchronization overhead side of the curve.
fn write_bench_pr10(curve: &[(usize, Sample)], fp: u64) {
    let path = workspace_root().join("BENCH_pr10.json");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pr10-shard-scaling\",\n");
    out.push_str(&format!(
        "  \"scenario\": \"{SCALE_NODES} nodes x {SCALE_OSDS_PER_NODE} OSDs \
         ({} OSDs), {SCALE_CONNS} connections, 4 KiB random write\",\n",
        SCALE_NODES * SCALE_OSDS_PER_NODE,
    ));
    out.push_str(
        "  \"metric\": \"DES events/sec vs worker-shard count; the metric \
         fingerprint is asserted byte-identical across all shard counts\",\n",
    );
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"fingerprint\": \"{fp:#018x}\",\n"));
    out.push_str("  \"runs\": [\n");
    let rows: Vec<String> = curve
        .iter()
        .map(|(shards, s)| {
            format!(
                "    {{\"shards\": {shards}, \"wall_secs\": {:.6}, \"events\": {}, \
                 \"events_per_sec\": {:.1}, \"sim_ops_per_sec\": {:.1}}}",
                s.wall_secs,
                s.events,
                s.events_per_sec(),
                s.sim_ops_per_sec(),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(&path, out).expect("write BENCH_pr10.json");
    println!("[json] {}", path.display());
}

/// `--scale-curve`: run the scale scenario at 1/2/4/8 worker shards,
/// assert every fingerprint equals the shards=1 one, and commit the curve.
fn run_scale_curve(smoke: bool, sched: SchedulerKind) {
    let measure = if smoke {
        SimDuration::millis(4)
    } else {
        SimDuration::millis(12)
    };
    println!(
        "scale curve: {SCALE_NODES} nodes x {SCALE_OSDS_PER_NODE} OSDs, \
         {SCALE_CONNS} conns, 4 KiB randwrite, {} ms window",
        measure.as_nanos() / 1_000_000,
    );
    // Untimed warmup: the first run in a process pays allocator growth
    // and zero-page faults for the MemDisks; without it the shards=1
    // point (always measured first) looks 2x slower than steady state.
    let _ = run_scale(measure, sched, 1);
    // Shared 1-core runners jitter wall time by 3-5x between runs; the
    // min of a few repeats is the usual low-noise estimator for
    // CPU-bound work. Every repeat still has to reproduce the
    // fingerprint, so the determinism check gets stronger, not weaker.
    let iters = if smoke { 1 } else { 3 };
    let mut curve: Vec<(usize, Sample)> = Vec::new();
    let mut base_fp: Option<Vec<u64>> = None;
    for &shards in &[1usize, 2, 4, 8] {
        let (mut s, fp) = run_scale(measure, sched, shards);
        for _ in 1..iters {
            let (again, fp_again) = run_scale(measure, sched, shards);
            assert_eq!(
                fp, fp_again,
                "scale: shards={shards} fingerprint drifted between repeats"
            );
            if again.wall_secs < s.wall_secs {
                s = again;
            }
        }
        println!(
            "  [scale] shards {shards}: wall {:.3}s  events {}  events/sec {:.0}  \
             fingerprint {:#018x}",
            s.wall_secs,
            s.events,
            s.events_per_sec(),
            fp_hash(&fp),
        );
        match &base_fp {
            None => base_fp = Some(fp),
            Some(base) => assert_eq!(
                *base, fp,
                "scale: shards={shards} must replay the shards=1 fingerprint byte-identically"
            ),
        }
        curve.push((shards, s));
    }
    println!("  [scale] fingerprints identical across shards 1/2/4/8: OK");
    if smoke {
        println!("smoke scale curve complete (nothing written)");
    } else {
        write_bench_pr10(&curve, fp_hash(base_fp.as_deref().unwrap_or(&[])));
    }
}

/// `--check-jobs`: the sweep-parallelism regression guard. PR 5's numbers
/// showed `--jobs 2` *losing* to `--jobs 1` (133.3k vs 151.9k events/sec)
/// because workers serialized on shared result state and the longest cell
/// landed last. With longest-first scheduling and share-nothing workers,
/// two jobs must never be slower than one beyond measurement noise — even
/// on a single hardware thread, where the best case is a tie.
fn run_jobs_check(sched_label: SchedulerKind) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("jobs check (smoke sweep, scheduler {sched_label:?}, {cores} host cores):");
    // Alternate job counts and keep the min of three runs each: shared
    // runners drift minute to minute, and the regression this guards
    // against (PR 5's pre-LPT schedule) was only ~1.14x — a single shot
    // cannot tell that from noise.
    let (mut s1, mut s2) = (run_figure_sweep(true, 1), run_figure_sweep(true, 2));
    for _ in 0..2 {
        let again2 = run_figure_sweep(true, 2);
        let again1 = run_figure_sweep(true, 1);
        if again1.wall_secs < s1.wall_secs {
            s1 = again1;
        }
        if again2.wall_secs < s2.wall_secs {
            s2 = again2;
        }
    }
    assert_eq!(
        s1.events, s2.events,
        "sweep must execute the same events regardless of job count"
    );
    // On one core two jobs can only tie (plus scheduling noise); with real
    // parallelism available a loss means contention crept back in.
    let tolerance = if cores >= 2 { 1.10 } else { 1.25 };
    println!(
        "  [jobs] jobs=1 {:.3}s  jobs=2 {:.3}s  ratio {:.3} (tolerance {tolerance})",
        s1.wall_secs,
        s2.wall_secs,
        s2.wall_secs / s1.wall_secs,
    );
    assert!(
        s2.wall_secs <= s1.wall_secs * tolerance,
        "sweep parallelism regression: --jobs 2 took {:.3}s vs --jobs 1 {:.3}s \
         (tolerance {tolerance}x on {cores} cores)",
        s2.wall_secs,
        s1.wall_secs,
    );
    println!("  [jobs] check passed: two jobs are not slower than one");
}

/// Runs one scenario `iters` times (plus a determinism re-run of the first
/// iteration) and returns the best sample by events/sec plus the first
/// run's fingerprint (for traced-vs-untraced comparisons).
fn measure_scenario(
    name: &str,
    iters: usize,
    run: impl Fn() -> (Sample, Vec<u64>, Option<TraceOut>),
) -> (Sample, Vec<u64>) {
    let (first, fp_a, _) = run();
    let (_, fp_b, _) = run();
    assert_eq!(
        fp_a, fp_b,
        "{name}: same seed must replay a byte-identical metric fingerprint"
    );
    println!(
        "  [{name}] determinism guard: OK ({} counters identical)",
        fp_a.len()
    );
    println!("  [{name}] fingerprint {:#018x}", fp_hash(&fp_a));
    let mut best = first;
    for _ in 1..iters.max(1) {
        let (s, _, _) = run();
        if s.events_per_sec() > best.events_per_sec() {
            best = s;
        }
    }
    println!(
        "  [{name}] wall {:.3}s  events {}  events/sec {:.0}  sim-ops/sec {:.0}",
        best.wall_secs,
        best.events,
        best.events_per_sec(),
        best.sim_ops_per_sec(),
    );
    (best, fp_a)
}

/// Runs a scenario once with tracing + telemetry armed, asserts the traced
/// fingerprint matches the untraced one (tracing must be purely passive),
/// and writes the artifacts next to `path`'s stem (`-<name>` suffix unless
/// the caller narrowed the run to one scenario with `--only`).
fn emit_trace_artifacts(
    name: &str,
    path: &str,
    exclusive: bool,
    untraced_fp: &[u64],
    untraced_wall_secs: f64,
    run: impl Fn() -> (Sample, Vec<u64>, Option<TraceOut>),
) {
    let (traced, fp, out) = run();
    assert_eq!(
        fp, untraced_fp,
        "{name}: tracing must not change the simulation (fingerprint drift)"
    );
    println!("  [{name}] traced fingerprint identical: OK");
    println!(
        "  [{name}] traced wall {:.3}s  overhead {:+.1}% vs untraced {:.3}s",
        traced.wall_secs,
        (traced.wall_secs / untraced_wall_secs - 1.0) * 100.0,
        untraced_wall_secs
    );
    let out = out.expect("traced run yields artifacts");
    // A `.gz` suffix selects deterministic gzip output (same bytes for the
    // same run — CI still compares artifacts with `cmp`); the CSV siblings
    // stay plain either way and derive from the path without the suffix.
    let gz = path.ends_with(".gz");
    let trimmed = path.strip_suffix(".gz").unwrap_or(path);
    let base = if exclusive {
        PathBuf::from(trimmed)
    } else {
        let p = PathBuf::from(trimmed);
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("json");
        p.with_file_name(format!("{stem}-{name}.{ext}"))
    };
    let dest = if gz {
        let mut name = base.as_os_str().to_owned();
        name.push(".gz");
        PathBuf::from(name)
    } else {
        base.clone()
    };
    if gz {
        std::fs::write(&dest, rablock_bench::gz::gzip(out.chrome_json.as_bytes()))
            .expect("write trace json.gz");
    } else {
        std::fs::write(&dest, &out.chrome_json).expect("write trace json");
    }
    println!("  [{name}] trace written: {}", dest.display());
    let telemetry_dest = base.with_extension("telemetry.csv");
    std::fs::write(&telemetry_dest, &out.telemetry_csv).expect("write telemetry csv");
    println!("  [{name}] telemetry written: {}", telemetry_dest.display());
    let attribution_dest = base.with_extension("attribution.csv");
    std::fs::write(&attribution_dest, &out.attribution_csv).expect("write attribution csv");
    println!(
        "  [{name}] attribution written: {}",
        attribution_dest.display()
    );
}

fn workspace_root() -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path
}

fn run_json(label: &str, scenario: &str, s: &Sample) -> String {
    let degradation = match s.baseline_p99_write_ns {
        Some(base) => format!(
            ", \"baseline_p99_write_ns\": {base}, \"p99_degradation\": {:.3}",
            s.p99_write_ns as f64 / base.max(1) as f64
        ),
        None => String::new(),
    };
    format!(
        "    {{\"label\": \"{label}\", \"scenario\": \"{scenario}\", \
         \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}, \
         \"sim_writes\": {}, \"sim_reads\": {}, \"sim_ops_per_sec\": {:.1}, \
         \"p99_write_ns\": {}, \"p999_write_ns\": {}{degradation}}}",
        s.wall_secs,
        s.events,
        s.events_per_sec(),
        s.sim_writes,
        s.sim_reads,
        s.sim_ops_per_sec(),
        s.p99_write_ns,
        s.p999_write_ns,
    )
}

/// Merges this invocation's runs into `BENCH_pr6.json`: existing runs with
/// a different label are kept (one run object per line), runs with the same
/// label are replaced.
fn write_bench_json(label: &str, runs: &[String]) {
    let path = workspace_root().join("BENCH_pr6.json");
    let mut kept: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let t = line.trim();
            if t.starts_with("{\"label\": ") && !t.starts_with(&format!("{{\"label\": \"{label}\""))
            {
                kept.push(format!("    {}", t.trim_end_matches(',')));
            }
        }
    }
    kept.extend(runs.iter().cloned());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pr6-wallclock\",\n");
    out.push_str(
        "  \"metric\": \"DES events/sec, simulated client ops/sec per wall-clock second, \
         and p99 write latency (grow cell: vs churn-free control)\",\n",
    );
    out.push_str("  \"runs\": [\n");
    out.push_str(&kept.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(&path, out).expect("write BENCH_pr6.json");
    println!("[json] {}", path.display());
}

/// Runs the full figure grid (`--sweep`) and returns it as one Sample.
fn run_figure_sweep(smoke: bool, jobs: usize) -> Sample {
    let cells = figure_cells(smoke, None);
    println!(
        "figure sweep: {} cells on {jobs} jobs{}",
        cells.len(),
        if smoke { " (smoke)" } else { "" }
    );
    let outcome = run_sweep(cells, jobs);
    let merged = outcome.merged_lines();
    let merged_hash = fp_hash(&merged.bytes().map(u64::from).collect::<Vec<u64>>());
    let mut writes = 0;
    let mut reads = 0;
    for r in &outcome.results {
        writes += r.out.writes;
        reads += r.out.reads;
    }
    println!("  [sweep] merged output hash {merged_hash:#018x}");
    println!(
        "  [sweep] wall {:.3}s  events {}  events/sec {:.0}",
        outcome.wall_secs,
        outcome.events,
        outcome.events as f64 / outcome.wall_secs,
    );
    Sample {
        wall_secs: outcome.wall_secs,
        events: outcome.events,
        sim_writes: writes,
        sim_reads: reads,
        p99_write_ns: 0,
        p999_write_ns: 0,
        baseline_p99_write_ns: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label: Option<String> = None;
    let mut smoke = false;
    let mut sweep = false;
    let mut iters = 3usize;
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut only: Option<String> = None;
    let mut sched = SchedulerKind::default();
    let mut trace_path: Option<String> = None;
    let mut shards = 1usize;
    let mut scale_curve = false;
    let mut check_jobs = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                shards = args
                    .get(i + 1)
                    .expect("--shards needs a value")
                    .parse()
                    .expect("--shards takes a number");
                i += 2;
            }
            "--scale-curve" => {
                scale_curve = true;
                i += 1;
            }
            "--check-jobs" => {
                check_jobs = true;
                i += 1;
            }
            "--trace-out" => {
                trace_path = Some(args.get(i + 1).expect("--trace-out needs a path").clone());
                i += 2;
            }
            "--label" => {
                label = Some(args.get(i + 1).expect("--label needs a value").clone());
                i += 2;
            }
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters takes a number");
                i += 2;
            }
            "--jobs" => {
                jobs = args
                    .get(i + 1)
                    .expect("--jobs needs a value")
                    .parse()
                    .expect("--jobs takes a number");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--sweep" => {
                sweep = true;
                i += 1;
            }
            "--only" => {
                only = Some(args.get(i + 1).expect("--only needs a value").clone());
                i += 2;
            }
            "--sched" => {
                sched = match args.get(i + 1).expect("--sched needs a value").as_str() {
                    "wheel" => SchedulerKind::Wheel,
                    "heap" => SchedulerKind::Heap,
                    other => panic!("--sched takes wheel|heap, got {other:?}"),
                };
                i += 2;
            }
            other => panic!(
                "unknown argument {other:?} \
                 (expected --label/--iters/--jobs/--smoke/--sweep/--only/--sched/--trace-out\
                 /--shards/--scale-curve/--check-jobs)"
            ),
        }
    }

    banner(
        "wallclock",
        "wall-clock throughput of the simulator (events/sec, sim-ops/sec)",
    );

    // Sweep cells build their own configs through `run_sim`, which picks
    // up the process-wide default; the scenario runners below take the
    // value explicitly.
    rablock_bench::set_default_shards(shards);
    println!("worker shards: {shards}");

    if check_jobs {
        run_jobs_check(sched);
        return;
    }

    if scale_curve {
        run_scale_curve(smoke, sched);
        return;
    }

    if sweep {
        let sample = run_figure_sweep(smoke, jobs);
        if smoke {
            println!("smoke sweep complete (nothing written)");
        } else if let Some(label) = label {
            let runs = vec![run_json(&label, "figure-sweep", &sample)];
            write_bench_json(&label, &runs);
        }
        return;
    }

    println!("scheduler: {sched:?}");
    let (fig7_measure, chaos_measure, grow_measure) = if smoke {
        (
            SimDuration::millis(20),
            SimDuration::millis(100),
            SimDuration::millis(150),
        )
    } else {
        // The grow window intentionally matches smoke: the p99 degradation
        // window is measured over the expansion itself (both churn waves
        // plus backfill settle), and a longer steady-state tail only
        // dilutes the churn-window tail back toward the control's.
        (
            SimDuration::millis(160),
            SimDuration::secs(2),
            SimDuration::millis(150),
        )
    };
    if smoke {
        iters = 1;
    }

    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);
    let exclusive = only.is_some();
    let mut runs = Vec::new();
    if want("fig7") {
        println!("fig7 4 KiB randwrite (DOP, 4 nodes x 2 OSDs, 16 conns):");
        let (fig7, fp) = measure_scenario("fig7", iters, || {
            run_fig7(fig7_measure, sched, shards, false)
        });
        if let Some(path) = &trace_path {
            emit_trace_artifacts("fig7", path, exclusive, &fp, fig7.wall_secs, || {
                run_fig7(fig7_measure, sched, shards, true)
            });
        }
        runs.push(("fig7", fig7));
    }
    if want("chaos") {
        println!("chaos (3 nodes, faults + retries + history checker):");
        let (chaos, fp) = measure_scenario("chaos", iters, || {
            run_chaos(chaos_measure, sched, shards, false)
        });
        if let Some(path) = &trace_path {
            emit_trace_artifacts("chaos", path, exclusive, &fp, chaos.wall_secs, || {
                run_chaos(chaos_measure, sched, shards, true)
            });
        }
        runs.push(("chaos", chaos));
    }
    if want("grow") {
        println!("grow 4->8->64 OSDs under load (weight churn + throttled backfill):");
        let (control, _, _) = run_grow(grow_measure, sched, shards, false, false);
        let (mut grow, fp) = measure_scenario("grow", iters, || {
            run_grow(grow_measure, sched, shards, true, false)
        });
        if let Some(path) = &trace_path {
            emit_trace_artifacts("grow", path, exclusive, &fp, grow.wall_secs, || {
                run_grow(grow_measure, sched, shards, true, true)
            });
        }
        grow.baseline_p99_write_ns = Some(control.p99_write_ns);
        println!(
            "  [grow] p99 write {} ns vs churn-free control {} ns ({:.2}x degradation window)",
            grow.p99_write_ns,
            control.p99_write_ns,
            grow.p99_write_ns as f64 / control.p99_write_ns.max(1) as f64,
        );
        runs.push(("grow-4-8-64", grow));
    }

    if smoke {
        println!("smoke sweep complete (nothing written)");
        return;
    }
    if let Some(label) = label {
        let runs: Vec<String> = runs
            .iter()
            .map(|(name, s)| run_json(&label, name, s))
            .collect();
        write_bench_json(&label, &runs);
    }
}
