//! Reproduce every figure of the paper in one parallel sweep.
//!
//! The standalone `benches/*.rs` harnesses regenerate one figure each,
//! sequentially. This binary enumerates the same (figure, configuration)
//! grid as independent cells and fans them across worker threads; results
//! merge in key order, so the data output is byte-identical for any
//! `--jobs` value (each cell is a seeded, single-threaded simulation —
//! see DESIGN.md §11).
//!
//! Usage:
//!
//! ```text
//! figures [--jobs N] [--smoke] [--only PREFIX] [--out PATH] [--shards N]
//! ```
//!
//! `--jobs` defaults to all cores. `--smoke` shrinks measurement windows
//! ~8× for CI. `--only fig09/` runs one figure's cells. The merged data
//! lines (timing-free, deterministic) go to `--out` (default
//! `results/figures_sweep.txt` at the workspace root) and to stdout.
//! `--shards N` runs every cell's simulation on N engine worker threads
//! (space-parallel domains); like `--jobs`, it can only change wall-clock,
//! never a data line.

use std::path::PathBuf;

use rablock_bench::banner;
use rablock_bench::sweep::{figure_cells, run_sweep};

fn workspace_root() -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut smoke = false;
    let mut only: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut shards = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                shards = args
                    .get(i + 1)
                    .expect("--shards needs a value")
                    .parse()
                    .expect("--shards takes a number");
                i += 2;
            }
            "--jobs" => {
                jobs = args
                    .get(i + 1)
                    .expect("--jobs needs a value")
                    .parse()
                    .expect("--jobs takes a number");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--only" => {
                only = Some(args.get(i + 1).expect("--only needs a value").clone());
                i += 2;
            }
            "--out" => {
                out = Some(PathBuf::from(args.get(i + 1).expect("--out needs a value")));
                i += 2;
            }
            other => {
                panic!("unknown argument {other:?} (expected --jobs/--smoke/--only/--out/--shards)")
            }
        }
    }

    banner(
        "figures",
        "all paper figures + ablation grids as one parallel sweep",
    );
    rablock_bench::set_default_shards(shards);
    let cells = figure_cells(smoke, only.as_deref());
    let n = cells.len();
    println!(
        "{n} cells, {jobs} jobs, {shards} engine shards{}",
        if smoke { " (smoke)" } else { "" }
    );
    let outcome = run_sweep(cells, jobs);

    let merged = outcome.merged_lines();
    print!("{merged}");
    println!(
        "sweep: {} cells in {:.2}s wall ({} events, {:.0} events/sec aggregate)",
        outcome.results.len(),
        outcome.wall_secs,
        outcome.events,
        outcome.events as f64 / outcome.wall_secs,
    );
    let slowest = outcome
        .results
        .iter()
        .max_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs));
    if let Some(s) = slowest {
        println!("slowest cell: {} ({:.2}s)", s.key, s.wall_secs);
    }

    let path = out.unwrap_or_else(|| {
        let mut p = workspace_root();
        p.push("results");
        let _ = std::fs::create_dir_all(&p);
        p.push("figures_sweep.txt");
        p
    });
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &merged).expect("write merged sweep output");
    println!("[out] {}", path.display());
}
