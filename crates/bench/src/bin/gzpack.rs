//! Deterministic gzip/gunzip for committed artifacts.
//!
//! ```text
//! gzpack <in> [out.gz]      # compress (default out: <in>.gz)
//! gzpack -d <in.gz> [out]   # decompress (default out: strip .gz)
//! ```
//!
//! Same input, same bytes: the codec pins every header field (see
//! [`rablock_bench::gz`]), so CI can `cmp` compressed artifacts exactly
//! like the raw files they replace. Decompression also reads streams from
//! stock `gzip`.

use rablock_bench::gz;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (decompress, rest) = match args.first().map(String::as_str) {
        Some("-d") => (true, &args[1..]),
        _ => (false, &args[..]),
    };
    let Some(input) = rest.first() else {
        eprintln!("usage: gzpack [-d] <in> [out]");
        std::process::exit(2);
    };
    let data = std::fs::read(input).unwrap_or_else(|e| {
        eprintln!("gzpack: read {input}: {e}");
        std::process::exit(1);
    });
    let (out_path, out_data) = if decompress {
        let out = rest.get(1).cloned().unwrap_or_else(|| {
            input
                .strip_suffix(".gz")
                .map(String::from)
                .unwrap_or_else(|| format!("{input}.out"))
        });
        let decoded = gz::gunzip(&data).unwrap_or_else(|e| {
            eprintln!("gzpack: {input}: {e}");
            std::process::exit(1);
        });
        (out, decoded)
    } else {
        let out = rest
            .get(1)
            .cloned()
            .unwrap_or_else(|| format!("{input}.gz"));
        (out, gz::gzip(&data))
    };
    std::fs::write(&out_path, &out_data).unwrap_or_else(|e| {
        eprintln!("gzpack: write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "gzpack: {input} ({} bytes) -> {out_path} ({} bytes)",
        data.len(),
        out_data.len()
    );
}
