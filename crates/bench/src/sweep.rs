//! Parallel figure sweep: every table and figure of the paper as a flat
//! grid of independent simulation cells, fanned across OS threads.
//!
//! Each `benches/*.rs` harness reproduces one figure with pretty-printed
//! tables; reproducing *all* of them sequentially costs minutes of
//! wall-clock because every cell is a single-threaded DES run. The cells
//! are mutually independent, though — each builds its own cluster from a
//! fixed seed — so the sweep runs them on a pool of worker threads
//! ([`run_sweep`]) and merges results **by cell key, not completion
//! order**. Two runs with different `--jobs` produce byte-identical merged
//! output; parallelism lives strictly *between* simulations, never inside
//! one (see DESIGN.md §11).
//!
//! [`figure_cells`] enumerates the full grid: Figures 1, 7–12, Tables I
//! and II, and the two extension ablations — the same configurations the
//! standalone harnesses use, reporting raw counters instead of prose.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use rablock::sim::{ChurnOp, Component, ConnWorkload, SimDuration, SimReport, SimTime};
use rablock::PipelineMode;
use rablock_cluster::placement::DEFAULT_OSD_WEIGHT;
use rablock_workload::{AccessPattern, FioJob, YcsbKind, YcsbWorkload};

use crate::{
    paper_cluster, randread_conns, randwrite_conns, run_sim, windows, Dataset, FioConn,
    SeqWriteThenRead, YcsbConn,
};

/// What one sweep cell reports back: the raw counters every cell shares
/// plus the figure-specific fields its harness would tabulate.
pub struct CellOut {
    /// Scheduler work items the cell's simulation executed.
    pub events: u64,
    /// Completed simulated writes.
    pub writes: u64,
    /// Completed simulated reads.
    pub reads: u64,
    /// Figure-specific `key=value` fields, in fixed order.
    pub fields: Vec<(&'static str, String)>,
}

impl CellOut {
    fn from_report(r: &SimReport, fields: Vec<(&'static str, String)>) -> CellOut {
        CellOut {
            events: r.events_processed,
            writes: r.writes_done,
            reads: r.reads_done,
            fields,
        }
    }
}

/// One independent simulation in the sweep grid.
pub struct Cell {
    /// Stable identifier; merged output is sorted by it.
    pub key: String,
    /// Relative cost estimate (arbitrary units; larger = longer). The
    /// scheduler starts expensive cells first (LPT) so a long cell claimed
    /// last cannot straggle past the pool's drain and stretch the sweep's
    /// tail — the makespan regression the `--jobs 2` baseline showed.
    pub cost_hint: u64,
    run: Box<dyn FnOnce() -> CellOut + Send>,
}

impl Cell {
    fn new(key: impl Into<String>, run: impl FnOnce() -> CellOut + Send + 'static) -> Cell {
        Cell {
            key: key.into(),
            cost_hint: 1,
            run: Box::new(run),
        }
    }

    /// Sets the cell's relative cost estimate (see [`Cell::cost_hint`]).
    fn cost(mut self, hint: u64) -> Cell {
        self.cost_hint = hint.max(1);
        self
    }
}

/// A completed cell: its deterministic data line plus (non-deterministic)
/// per-cell wall time for scheduling diagnostics.
pub struct CellResult {
    /// The cell's key.
    pub key: String,
    /// The cell's counters and fields.
    pub out: CellOut,
    /// Wall-clock seconds this cell took (not part of merged output).
    pub wall_secs: f64,
}

impl CellResult {
    /// The deterministic merged-output line for this cell (no timing).
    pub fn line(&self) -> String {
        let mut s = format!(
            "cell {} writes={} reads={} events={}",
            self.key, self.out.writes, self.out.reads, self.out.events
        );
        for (k, v) in &self.out.fields {
            s.push(' ');
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }
}

/// Outcome of a sweep: key-sorted cell results plus aggregate timing.
pub struct SweepOutcome {
    /// Cell results sorted by key (deterministic merge order).
    pub results: Vec<CellResult>,
    /// Total wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
    /// Sum of events over all cells.
    pub events: u64,
}

impl SweepOutcome {
    /// The full deterministic merged output, one line per cell.
    pub fn merged_lines(&self) -> String {
        let mut s = String::new();
        for r in &self.results {
            s.push_str(&r.line());
            s.push('\n');
        }
        s
    }
}

/// Runs `cells` on `jobs` worker threads pulling from a shared work index,
/// then merges results in key order. With `jobs = 1` this degenerates to a
/// sequential run; the merged output is identical either way because each
/// cell is internally single-threaded and seeded, and merge order is by
/// key, never by completion time.
///
/// Scheduling is longest-processing-time-first: cells are claimed in
/// descending [`Cell::cost_hint`] order (ties broken by key, so the claim
/// order itself is deterministic), which keeps the expensive cells off the
/// sweep's tail. Workers share exactly one cache line of mutable state —
/// the claim index — and stream results back over a channel; nothing else
/// is touched by more than one thread.
pub fn run_sweep(cells: Vec<Cell>, jobs: usize) -> SweepOutcome {
    let n = cells.len();
    let t = Instant::now();
    // LPT order. The per-slot mutex is locked exactly once, by the claiming
    // worker — it exists to move the FnOnce out, not to synchronize.
    let mut order: Vec<Cell> = cells;
    order.sort_by(|a, b| b.cost_hint.cmp(&a.cost_hint).then(a.key.cmp(&b.key)));
    let work: Vec<Mutex<Option<Cell>>> = order.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<CellResult>();
    std::thread::scope(|s| {
        for _ in 0..jobs.max(1) {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = work[i]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each index is claimed once");
                let key = cell.key;
                let cell_t = Instant::now();
                let out = (cell.run)();
                tx.send(CellResult {
                    key,
                    out,
                    wall_secs: cell_t.elapsed().as_secs_f64(),
                })
                .expect("collector outlives workers");
            });
        }
        drop(tx);
    });
    let mut results: Vec<CellResult> = rx.into_iter().collect();
    assert_eq!(results.len(), n, "every cell reports exactly once");
    results.sort_by(|a, b| a.key.cmp(&b.key));
    let events = results.iter().map(|r| r.out.events).sum();
    SweepOutcome {
        results,
        wall_secs: t.elapsed().as_secs_f64(),
        events,
    }
}

/// Scales a harness window down for smoke runs (CI) while keeping the grid
/// shape identical to a full sweep.
fn scaled(d: SimDuration, smoke: bool) -> SimDuration {
    if smoke {
        SimDuration::nanos((d.as_nanos() / 8).max(4_000_000))
    } else {
        d
    }
}

fn wins(smoke: bool) -> (SimDuration, SimDuration) {
    let (w, m) = windows();
    (scaled(w, smoke), scaled(m, smoke))
}

fn mode_slug(mode: PipelineMode) -> &'static str {
    match mode {
        PipelineMode::Original => "original",
        PipelineMode::RtcV1 => "rtc-v1",
        PipelineMode::RtcV2 => "rtc-v2",
        PipelineMode::RtcV3 => "rtc-v3",
        PipelineMode::Cos => "cos",
        PipelineMode::Ptc => "ptc",
        PipelineMode::Dop => "dop",
        PipelineMode::Ideal => "ideal",
    }
}

fn ns(d: rablock::sim::SimDuration) -> String {
    d.as_nanos().to_string()
}

/// The full figure grid: one [`Cell`] per (figure, configuration) point,
/// mirroring the standalone harnesses in `benches/`. `only` filters by key
/// prefix; `smoke` shrinks measurement windows without changing the grid.
pub fn figure_cells(smoke: bool, only: Option<&str>) -> Vec<Cell> {
    let mut cells = Vec::new();
    // Cost hints in connection-milliseconds of simulated time — a coarse
    // proxy for events executed, good enough for LPT ordering. `cms`
    // converts (connections, [windows...]) to that unit.
    let cms = |conns: u64, wins: &[SimDuration]| -> u64 {
        conns
            * wins
                .iter()
                .map(|w| w.as_nanos() / 1_000_000)
                .sum::<u64>()
                .max(1)
    };
    let (std_w, std_m) = wins(smoke);

    // Figure 1 — roofline: Original vs RTC variants at 4 cores/node.
    for mode in [
        PipelineMode::Original,
        PipelineMode::RtcV1,
        PipelineMode::RtcV2,
        PipelineMode::RtcV3,
    ] {
        let hint = cms(12, &[std_w, std_m]);
        cells.push(
            Cell::new(format!("fig01/{}", mode_slug(mode)), move || {
                let conns = 12;
                let dataset = Dataset::default_for(conns);
                let (warmup, measure) = wins(smoke);
                let mut cfg = paper_cluster(mode);
                cfg.cores_per_node = 4;
                cfg.osds_per_node = 1;
                cfg.messenger_threads = 2;
                cfg.pg_threads = 2;
                cfg.rtc_threads = 4;
                let r = run_sim(
                    cfg,
                    dataset,
                    randwrite_conns(dataset, conns),
                    warmup,
                    measure,
                );
                CellOut::from_report(
                    &r,
                    vec![
                        ("iops", format!("{:.0}", r.write_iops)),
                        ("lat_ns", ns(r.write_lat.mean)),
                        ("cpu_pct", format!("{:.1}", r.mean_node_cpu())),
                        ("ctx", r.context_switches.to_string()),
                    ],
                )
            })
            .cost(hint),
        );
    }

    // Table I — write amplification of the Original backend.
    let hint = cms(8, &[std_w, scaled(SimDuration::millis(900), smoke)]);
    cells.push(
        Cell::new("table1/original", move || {
            let conns = 8;
            let dataset = Dataset::default_for(conns);
            let mut cfg = paper_cluster(PipelineMode::Original);
            cfg.osd.lsm.level_base_bytes = 4 << 20;
            cfg.osd.lsm.level_multiplier = 6;
            let (warmup, _) = wins(smoke);
            let measure = scaled(SimDuration::millis(900), smoke);
            let r = run_sim(
                cfg,
                dataset,
                randwrite_conns(dataset, conns),
                warmup,
                measure,
            );
            let data = r.store.user_bytes;
            let total = r.device.bytes_written;
            CellOut::from_report(
                &r,
                vec![
                    ("user", (data / 2).to_string()),
                    ("data", data.to_string()),
                    ("total", total.to_string()),
                    ("waf", format!("{:.3}", total as f64 / data.max(1) as f64)),
                ],
            )
        })
        .cost(hint),
    );

    // Figure 7 — 4 KiB random write/read: Original vs Proposed vs Ideal.
    for part in ["write", "read"] {
        for mode in [
            PipelineMode::Original,
            PipelineMode::Dop,
            PipelineMode::Ideal,
        ] {
            cells.push(
                Cell::new(format!("fig07/{part}/{}", mode_slug(mode)), move || {
                    let conns = 16;
                    let dataset = Dataset::default_for(conns);
                    let (warmup, measure) = wins(smoke);
                    let workloads = if part == "write" {
                        randwrite_conns(dataset, conns)
                    } else {
                        randread_conns(dataset, conns)
                    };
                    let r = run_sim(paper_cluster(mode), dataset, workloads, warmup, measure);
                    let (iops, lat) = if part == "write" {
                        (r.write_iops, r.write_lat)
                    } else {
                        (r.read_iops, r.read_lat)
                    };
                    CellOut::from_report(
                        &r,
                        vec![
                            ("iops", format!("{iops:.0}")),
                            ("lat_ns", ns(lat.mean)),
                            ("p95_ns", ns(lat.p95)),
                            ("cpu_pct", format!("{:.1}", r.mean_node_cpu())),
                        ],
                    )
                })
                .cost(cms(16, &[std_w, std_m])),
            );
        }
    }

    // Table II — cumulative ablation Original → COS → PTC → DOP.
    for mode in [
        PipelineMode::Original,
        PipelineMode::Cos,
        PipelineMode::Ptc,
        PipelineMode::Dop,
    ] {
        cells.push(
            Cell::new(format!("table2/{}", mode_slug(mode)), move || {
                let conns = 16;
                let dataset = Dataset::default_for(conns);
                let (warmup, measure) = wins(smoke);
                let r = run_sim(
                    paper_cluster(mode),
                    dataset,
                    randwrite_conns(dataset, conns),
                    warmup,
                    measure,
                );
                CellOut::from_report(
                    &r,
                    vec![
                        ("iops", format!("{:.0}", r.write_iops)),
                        ("lat_ns", ns(r.write_lat.mean)),
                    ],
                )
            })
            .cost(cms(16, &[std_w, std_m])),
        );
    }

    // Figure 8 — write amplification: Original vs Proposed variants.
    for (slug, mode, pre_allocate, metadata_cache) in [
        ("original-lsm", PipelineMode::Original, true, false),
        ("prealloc", PipelineMode::Dop, true, false),
        ("prealloc-metacache", PipelineMode::Dop, true, true),
        ("no-prealloc", PipelineMode::Dop, false, false),
    ] {
        let hint = cms(8, &[std_w, scaled(SimDuration::millis(400), smoke)]);
        cells.push(
            Cell::new(format!("fig08/{slug}"), move || {
                let conns = 8;
                let dataset = Dataset::default_for(conns);
                let (warmup, _) = wins(smoke);
                let measure = scaled(SimDuration::millis(400), smoke);
                let mut cfg = paper_cluster(mode);
                cfg.osd.cos.pre_allocate = pre_allocate;
                cfg.osd.cos.metadata_cache = metadata_cache;
                let r = run_sim(
                    cfg,
                    dataset,
                    randwrite_conns(dataset, conns),
                    warmup,
                    measure,
                );
                let user = r.store.user_bytes;
                let device = r.device.bytes_written;
                CellOut::from_report(
                    &r,
                    vec![
                        ("user", user.to_string()),
                        ("device", device.to_string()),
                        ("waf", format!("{:.3}", device as f64 / user.max(1) as f64)),
                    ],
                )
            })
            .cost(hint),
        );
    }

    // Figure 9 — 128 KiB sequential throughput vs client threads.
    for threads in [1usize, 2, 4, 8, 16] {
        for part in ["write", "read"] {
            for mode in [PipelineMode::Original, PipelineMode::Dop] {
                // Sequential 128 KiB ops move far more bytes per op; the
                // read cells also pay a full write pass first.
                let w9 = scaled(SimDuration::millis(80), smoke);
                let m9 = scaled(SimDuration::millis(120), smoke);
                let hint = cms(threads as u64, &[w9, m9]) * if part == "read" { 4 } else { 2 };
                cells.push(
                    Cell::new(
                        format!("fig09/t{threads:02}/{part}/{}", mode_slug(mode)),
                        move || {
                            let warmup = scaled(SimDuration::millis(80), smoke);
                            let measure = scaled(SimDuration::millis(120), smoke);
                            let mut cfg = paper_cluster(mode);
                            cfg.queue_depth = 8;
                            let dataset = Dataset {
                                images: threads as u64,
                                image_bytes: 8 << 20,
                            };
                            let workloads: Vec<Box<dyn ConnWorkload>> = (0..threads)
                                .map(|c| {
                                    if part == "read" {
                                        Box::new(SeqWriteThenRead::new(dataset, c as u64))
                                            as Box<dyn ConnWorkload>
                                    } else {
                                        let job = FioJob::new(
                                            AccessPattern::SeqWrite,
                                            128 << 10,
                                            dataset.image_bytes,
                                        );
                                        Box::new(FioConn::new(dataset, c as u64, job))
                                            as Box<dyn ConnWorkload>
                                    }
                                })
                                .collect();
                            let r = run_sim(cfg, dataset, workloads, warmup, measure);
                            let done = if part == "write" {
                                r.writes_done
                            } else {
                                r.reads_done
                            };
                            let gbps = done as f64 * (128u64 << 10) as f64
                                / r.duration.as_secs_f64()
                                / 1e9;
                            CellOut::from_report(&r, vec![("gbps", format!("{gbps:.3}"))])
                        },
                    )
                    .cost(hint),
                );
            }
        }
    }

    // Figure 10 — YCSB A/B/C/D/F with 1000-byte unaligned records.
    for kind in YcsbKind::ALL {
        for mode in [PipelineMode::Original, PipelineMode::Dop] {
            cells.push(
                Cell::new(
                    format!(
                        "fig10/{}/{}",
                        format!("{kind:?}").to_lowercase(),
                        mode_slug(mode)
                    ),
                    move || {
                        let conns = 8;
                        let records_per_image = 12_000u64;
                        let record_bytes = 1_000u64;
                        let capacity = 16_000u64;
                        let dataset = Dataset {
                            images: conns as u64,
                            image_bytes: capacity * record_bytes,
                        };
                        let (warmup, measure) = wins(smoke);
                        let workloads = (0..conns)
                            .map(|c| {
                                let wl = YcsbWorkload::new(
                                    kind,
                                    records_per_image,
                                    record_bytes,
                                    capacity,
                                );
                                Box::new(YcsbConn::new(dataset, c as u64, wl))
                                    as Box<dyn ConnWorkload>
                            })
                            .collect();
                        let r = run_sim(paper_cluster(mode), dataset, workloads, warmup, measure);
                        let tput = (r.writes_done + r.reads_done) as f64 / r.duration.as_secs_f64();
                        CellOut::from_report(
                            &r,
                            vec![
                                ("ops_s", format!("{tput:.0}")),
                                ("read_lat_ns", ns(r.read_lat.mean)),
                                ("update_lat_ns", ns(r.write_lat.mean)),
                            ],
                        )
                    },
                )
                .cost(cms(8, &[std_w, std_m])),
            );
        }
    }

    // Figure 11 — partition scalability of the object store.
    for (i, partitions) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let hint = cms(3 * (i as u64 + 1), &[std_w, std_m]);
        cells.push(
            Cell::new(format!("fig11/p{partitions}"), move || {
                let conns = 3 * (i + 1);
                let dataset = Dataset::default_for(conns);
                let (warmup, measure) = wins(smoke);
                let mut cfg = paper_cluster(PipelineMode::Dop);
                cfg.osd.cos.partitions = partitions;
                cfg.non_priority_threads = partitions;
                let r = run_sim(
                    cfg,
                    dataset,
                    randwrite_conns(dataset, conns),
                    warmup,
                    measure,
                );
                CellOut::from_report(
                    &r,
                    vec![
                        ("conns", conns.to_string()),
                        ("iops", format!("{:.0}", r.write_iops)),
                        ("lat_ns", ns(r.write_lat.mean)),
                    ],
                )
            })
            .cost(hint),
        );
    }

    // Figure 12 — 95p latency vs op-log flush threshold.
    let hint = cms(12, &[std_w, std_m]);
    for threshold in [4usize, 8, 16, 32, 64] {
        cells.push(
            Cell::new(format!("fig12/thr{threshold:02}"), move || {
                let conns = 12;
                let dataset = Dataset {
                    images: conns as u64,
                    image_bytes: 2 << 20,
                };
                let (warmup, measure) = wins(smoke);
                let mut cfg = paper_cluster(PipelineMode::Dop);
                cfg.osd.flush_threshold = threshold;
                cfg.pacing = Some(SimDuration::micros(300));
                cfg.osd.ring_bytes = 512 << 10;
                cfg.flush_sweep = SimDuration::millis(40);
                let workloads = (0..conns)
                    .map(|c| {
                        let job = FioJob::new(
                            AccessPattern::RandRw { read_pct: 20 },
                            4096,
                            dataset.image_bytes,
                        );
                        Box::new(FioConn::new(dataset, c as u64, job)) as Box<dyn ConnWorkload>
                    })
                    .collect();
                let r = run_sim(cfg, dataset, workloads, warmup, measure);
                CellOut::from_report(
                    &r,
                    vec![
                        ("write_p95_ns", ns(r.write_lat.p95)),
                        ("read_p95_ns", ns(r.read_lat.p95)),
                        ("write_p99_ns", ns(r.write_lat.p99)),
                        ("write_p999_ns", ns(r.write_lat.p999)),
                    ],
                )
            })
            .cost(hint),
        );
    }

    // Extension ablation A — NVM ring capacity pressure.
    for ring in [16u64 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10] {
        cells.push(
            Cell::new(format!("abl-nvm/ring{:03}k", ring >> 10), move || {
                let conns = 12;
                let dataset = Dataset::default_for(conns);
                let (warmup, measure) = wins(smoke);
                let mut cfg = paper_cluster(PipelineMode::Dop);
                cfg.osd.ring_bytes = ring;
                let r = run_sim(
                    cfg,
                    dataset,
                    randwrite_conns(dataset, conns),
                    warmup,
                    measure,
                );
                CellOut::from_report(
                    &r,
                    vec![
                        ("iops", format!("{:.0}", r.write_iops)),
                        ("p99_ns", ns(r.write_lat.p99)),
                        ("stalls", r.nvm_full_stalls.to_string()),
                    ],
                )
            })
            .cost(cms(12, &[std_w, std_m])),
        );
    }

    // Extension ablation B — context-switch cost sensitivity.
    for cost_ns in [0u64, 1_200, 3_000, 6_000] {
        for mode in [PipelineMode::Original, PipelineMode::Dop] {
            cells.push(
                Cell::new(
                    format!("abl-ctx/cost{cost_ns:04}/{}", mode_slug(mode)),
                    move || {
                        let conns = 12;
                        let dataset = Dataset::default_for(conns);
                        let (warmup, measure) = wins(smoke);
                        let mut cfg = paper_cluster(mode);
                        cfg.ctx_switch = SimDuration::nanos(cost_ns);
                        let r = run_sim(
                            cfg,
                            dataset,
                            randwrite_conns(dataset, conns),
                            warmup,
                            measure,
                        );
                        CellOut::from_report(
                            &r,
                            vec![
                                ("iops", format!("{:.0}", r.write_iops)),
                                (
                                    "ctx_per_op",
                                    format!(
                                        "{:.2}",
                                        r.context_switches as f64 / r.writes_done.max(1) as f64
                                    ),
                                ),
                            ],
                        )
                    },
                )
                .cost(cms(12, &[std_w, std_m])),
            );
        }
    }

    // Elastic operations — grow 4→8 OSDs under random-write load. The
    // spare OSDs start provisioned-but-out; an admin reweight at 8 ms
    // weaves them in, so the cell's counters cover weighted rebalancing,
    // throttled backfill, and map churn (DESIGN.md §12). Warmup is zero so
    // the expansion lands inside the measured window in smoke and full
    // runs alike.
    // Churn + tracing + recovery make this cell disproportionately heavy.
    let hint = cms(8, &[scaled(SimDuration::millis(120), smoke)]) * 3;
    cells.push(
        Cell::new("elastic/grow-4-8", move || {
            let conns = 8;
            let dataset = Dataset::default_for(conns);
            let measure = scaled(SimDuration::millis(120), smoke);
            let mut cfg = paper_cluster(PipelineMode::Dop);
            cfg.retry = Some(Default::default());
            cfg.heartbeat_period = Some(SimDuration::millis(1));
            cfg.heartbeat_grace = SimDuration::millis(5);
            cfg.osd.max_backfill_inflight = 2;
            cfg.osd.backfill_bytes_per_tick = 1 << 20;
            // Node-major ids: OSDs {0,2,4,6} seed the cluster, {1,3,5,7} join.
            cfg.initially_out = (0..8).filter(|o| o % 2 == 1).collect();
            // Attribution on: the cell reports where the churn window's tail
            // goes (and doubles as CI coverage that tracing never shifts the
            // schedule — the counters must match the untraced baselines).
            cfg.trace = true;
            cfg.churn = (0..8)
                .filter(|o| o % 2 == 1)
                .map(|o| ChurnOp {
                    at: SimTime::ZERO
                        + SimDuration::millis(8)
                        + SimDuration::micros(100) * o as u64,
                    osd: o,
                    weight: DEFAULT_OSD_WEIGHT,
                })
                .collect();
            let r = run_sim(
                cfg,
                dataset,
                randwrite_conns(dataset, conns),
                SimDuration::ZERO,
                measure,
            );
            let att = r.attribution.as_ref().expect("tracing enabled");
            let comp_p99 = |c: Component| ns(att.components[c.idx()].1.p99);
            CellOut::from_report(
                &r,
                vec![
                    ("pushes", r.recovery_pushes.to_string()),
                    ("backfill_bytes", r.backfill_bytes.to_string()),
                    ("backfill_queued", r.backfill_queued.to_string()),
                    ("throttled_ns", r.backfill_throttled_nanos.to_string()),
                    ("write_p99_ns", ns(r.write_lat.p99)),
                    ("write_p999_ns", ns(r.write_lat.p999)),
                    ("queue_p99_ns", comp_p99(Component::Queue)),
                    ("service_p99_ns", comp_p99(Component::Service)),
                    ("device_p99_ns", comp_p99(Component::Device)),
                    ("retry_p99_ns", comp_p99(Component::Retry)),
                ],
            )
        })
        .cost(hint),
    );

    // Integrity overhead — fig7-style 4 KiB random write with background
    // deep scrub on vs off (DESIGN.md §14). Block checksums are on in both
    // cells so the delta isolates the scrub pass itself; the interval puts
    // exactly one whole-store deep pass inside the measured window, and the
    // shared recovery throttle is what bounds its read-back against client
    // traffic (BENCH_pr9.json states the resulting p99 budget). Heartbeats
    // are armed in both cells (the throttle replenishes on ticks) to keep
    // the comparison fair.
    for scrub_on in [false, true] {
        let key = if scrub_on {
            "scrub/deep-on"
        } else {
            "scrub/off"
        };
        let hint = cms(16, &[std_w, std_m]) * if scrub_on { 2 } else { 1 };
        cells.push(
            Cell::new(key, move || {
                let conns = 16;
                let dataset = Dataset::default_for(conns);
                let (warmup, measure) = wins(smoke);
                let mut cfg = paper_cluster(PipelineMode::Dop);
                cfg.osd.cos.checksums = true;
                cfg.heartbeat_period = Some(SimDuration::millis(1));
                cfg.heartbeat_grace = SimDuration::millis(5);
                if scrub_on {
                    cfg.scrub_interval = Some(scaled(SimDuration::millis(90), smoke));
                    cfg.scrub_deep_every = 1;
                }
                let r = run_sim(
                    cfg,
                    dataset,
                    randwrite_conns(dataset, conns),
                    warmup,
                    measure,
                );
                CellOut::from_report(
                    &r,
                    vec![
                        ("iops", format!("{:.0}", r.write_iops)),
                        ("write_p99_ns", ns(r.write_lat.p99)),
                        ("write_p999_ns", ns(r.write_lat.p999)),
                        ("scrubs", r.scrubs_completed.to_string()),
                        ("scrub_bytes", r.scrub_bytes.to_string()),
                        ("errors_found", r.scrub_errors_found.to_string()),
                        ("throttled_ns", r.scrub_throttled_nanos.to_string()),
                    ],
                )
            })
            .cost(hint),
        );
    }

    if let Some(prefix) = only {
        cells.retain(|c| c.key.starts_with(prefix));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_figure() {
        let cells = figure_cells(true, None);
        for prefix in [
            "fig01/", "fig07/", "fig08/", "fig09/", "fig10/", "fig11/", "fig12/", "table1/",
            "table2/", "abl-nvm/", "abl-ctx/", "elastic/", "scrub/",
        ] {
            assert!(
                cells.iter().any(|c| c.key.starts_with(prefix)),
                "missing {prefix}"
            );
        }
        let mut keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "cell keys must be unique");
    }

    #[test]
    fn cells_carry_cost_hints_and_lpt_orders_them_first() {
        let cells = figure_cells(true, None);
        // Every cell got an explicit hint (the default is 1).
        assert!(cells.iter().all(|c| c.cost_hint > 1));
        // The 16-thread sequential-read cell must outrank the 1-thread one.
        let hint_of = |key: &str| {
            cells
                .iter()
                .find(|c| c.key == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .cost_hint
        };
        assert!(hint_of("fig09/t16/read/dop") > hint_of("fig09/t01/read/dop"));
        // LPT claim order: after run_sweep's sort, descending hints.
        let mut order = figure_cells(true, None);
        order.sort_by(|a, b| b.cost_hint.cmp(&a.cost_hint).then(a.key.cmp(&b.key)));
        assert!(order.windows(2).all(|w| w[0].cost_hint >= w[1].cost_hint));
    }

    #[test]
    fn parallel_merge_is_byte_identical_to_sequential() {
        let seq = run_sweep(figure_cells(true, Some("fig11/")), 1);
        let par = run_sweep(figure_cells(true, Some("fig11/")), 2);
        assert_eq!(
            seq.merged_lines(),
            par.merged_lines(),
            "merge order is by key, so jobs must not change the output"
        );
    }
}
