//! Observability integration: the tracing pipeline must not just be
//! passive (see `determinism.rs`) — it must be *right*. Under a known
//! fault, the slow-op ring and per-component attribution have to point at
//! the actual culprit.
//!
//! The scenario: a 3-node replicated cluster in the coupled Ptc pipeline
//! (writes wait for the device), with one device running 8x slow behind a
//! gray-failure window that covers the whole run. Every write replicates
//! across all three OSDs, so the gray device sits on every op's critical
//! path and must dominate both the slow-op span trees and the aggregate
//! latency attribution.

use rablock::sim::{
    ClusterSim, ClusterSimConfig, Component, ConnWorkload, FaultPlan, GrayWindow, SimDuration,
    SimRng, SimTime, Track, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;
const GRAY_OSD: u32 = 1;

fn oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

/// A bounded random-write stream; objects are namespaced per connection.
struct WriteConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for WriteConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i >= 600 {
            return None;
        }
        let k = i % 8;
        let block = (i / 8) % 16;
        Some(WorkItem::Write {
            oid: oid(self.conn, k),
            offset: block * 4096,
            len: 4096,
            fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
        })
    }
}

fn gray_config() -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Ptc);
    cfg.nodes = 3;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.seed = 0x6BA1;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Ptc,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    // One gray device, 8x slower, for the entire run. Nothing else fails.
    cfg.faults = FaultPlan::none().with_gray_window(GrayWindow {
        device: GRAY_OSD as usize,
        from: SimTime::ZERO,
        until: ms(10_000),
        multiplier: 8.0,
    });
    cfg.trace = true;
    cfg.slow_op_ring = 16;
    cfg
}

/// The worst ops in the slow-op ring must attribute their dominant span to
/// the gray OSD's device, and the aggregate attribution must put the device
/// component in front of every other bucket.
#[test]
fn slow_ops_blame_the_gray_device() {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..2u64)
        .map(|c| Box::new(WriteConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut sim = ClusterSim::new(gray_config(), wl);
    let objects: Vec<(ObjectId, u64)> = (0..2u64)
        .flat_map(|c| (0..8).map(move |k| (oid(c, k), 1 << 20)))
        .collect();
    sim.prefill(&objects);
    let r = sim.run(SimDuration::ZERO, SimDuration::millis(50));
    assert!(r.writes_done > 100, "run must make progress");

    let att = r.attribution.as_ref().expect("tracing was enabled");
    assert!(att.ops > 100, "attribution saw the measured ops");
    assert!(
        !att.slow_ops.is_empty(),
        "slow-op ring captured the worst ops"
    );

    // Every captured slow op carries a full span tree; the worst ones must
    // blame the gray device specifically — right component, right OSD.
    let blamed = att
        .slow_ops
        .iter()
        .filter(|op| {
            op.dominant_span()
                .is_some_and(|s| s.comp == Component::Device && s.track == Track::Osd(GRAY_OSD))
        })
        .count();
    assert!(
        blamed * 2 > att.slow_ops.len(),
        "majority of slow ops must blame the gray device: {blamed}/{}",
        att.slow_ops.len()
    );
    let worst = &att.slow_ops[0];
    let dom = worst.dominant_span().expect("worst op has spans");
    assert_eq!(
        (dom.comp, dom.track),
        (Component::Device, Track::Osd(GRAY_OSD)),
        "the single worst op's dominant span is the gray device ({}ns of {}ns total)",
        dom.dur.as_nanos(),
        worst.total.as_nanos()
    );

    // Aggregate attribution agrees: device is the top component overall.
    let device_share = att.share(Component::Device);
    for comp in [
        Component::Queue,
        Component::Service,
        Component::Network,
        Component::Nvm,
        Component::Retry,
        Component::Other,
    ] {
        assert!(
            device_share > att.share(comp),
            "device share {device_share:.3} must exceed {comp:?} share {:.3}",
            att.share(comp)
        );
    }
}
