//! End-to-end data integrity: bit-rot chaos, background scrub, read-path
//! verification, and self-healing repair.
//!
//! The headline invariant: under bit-rot plans that corrupt fewer than
//! `size` replicas of any object (all rot lands on one OSD per case), every
//! acknowledged write remains readable with exactly the bytes acknowledged
//! (the history checker panics otherwise), every PG returns to Active, all
//! surviving replicas end byte-identical with consistent checksum metadata
//! — and the entire history, including which bits rotted, replays
//! byte-identically from the seed on both schedulers.

use proptest::prelude::*;
use rablock::sim::{
    BitRotSchedule, ClusterSim, ClusterSimConfig, ConnWorkload, CrashSchedule, FaultPlan,
    RetryPolicy, RotMedia, SchedulerKind, SimDuration, SimRng, SimTime, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cluster::placement::OsdMap;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;
const NODES: usize = 3;
const CONNS: u64 = 2;
const WRITES_PER_CONN: u64 = 96;
const READS_PER_CONN: u64 = 24;
/// Blocks the write phase maps per object (96 writes / 8 objects = 12
/// sequential 4 KiB blocks each). Prefill declares exactly this size so
/// every rot-eligible block is one a write actually mapped — rot that lands
/// always lands on real data, never on a hole.
const BLOCKS_PER_OBJECT: u64 = WRITES_PER_CONN / 8;
const OBJECT_BYTES: u64 = BLOCKS_PER_OBJECT * 4096;

/// Objects are namespaced per connection so no block has two writers.
fn oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

/// Case count, honoring `PROPTEST_CASES` — the scrub-chaos CI job relies on
/// it to dial intensity up without a code change.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Same write/read shape as the chaos suite: 12 blocks of 8 objects, then a
/// read sweep over the first blocks of each.
struct IntegrityConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for IntegrityConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < WRITES_PER_CONN {
            let k = i % 8;
            let block = (i / 8) % BLOCKS_PER_OBJECT;
            Some(WorkItem::Write {
                oid: oid(self.conn, k),
                offset: block * 4096,
                len: 4096,
                fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
            })
        } else if i < WRITES_PER_CONN + READS_PER_CONN {
            let j = i - WRITES_PER_CONN;
            Some(WorkItem::Read {
                oid: oid(self.conn, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

/// Ballast objects for [`FullSweepConn`]: one per group, outside the rot
/// strike's object range, written purely to stretch wall time and to keep
/// per-group records flowing so every real write gets flushed to the
/// backend before the read sweep begins.
const BALLAST_BASE: u64 = 1000;
const BALLAST_WRITES: u64 = 384;

fn ballast_oid(j: u64) -> ObjectId {
    let i = BALLAST_BASE + (j % 8);
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

/// One connection, five phases: (1) write every block of its 8 objects,
/// (2) ballast writes that flush the real blocks out of the NVM log,
/// (3) a first full read sweep, (4) a second long ballast phase — the rot
/// strike lands here, well clear of both sweeps' timing — and (5) a second
/// full read sweep that is therefore guaranteed to read every rotted block
/// from the backend. Read-repair alone (no scrub) must heal the replica
/// set.
struct FullSweepConn {
    cursor: u64,
}

const SWEEP_WRITES: u64 = 8 * BLOCKS_PER_OBJECT;
const SWEEP_TOTAL_OPS: u64 = SWEEP_WRITES + 2 * BALLAST_WRITES + 2 * SWEEP_WRITES;

impl ConnWorkload for FullSweepConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        let read = |j: u64| {
            Some(WorkItem::Read {
                oid: oid(0, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        };
        let ballast = |j: u64| {
            Some(WorkItem::Write {
                oid: ballast_oid(j),
                offset: (j / 8 % BLOCKS_PER_OBJECT) * 4096,
                len: 4096,
                fill: ((j * 13) % 251) as u8,
            })
        };
        if i < SWEEP_WRITES {
            let k = i % 8;
            let block = i / 8;
            Some(WorkItem::Write {
                oid: oid(0, k),
                offset: block * 4096,
                len: 4096,
                fill: ((k * 31 + block) % 251) as u8,
            })
        } else if i < SWEEP_WRITES + BALLAST_WRITES {
            ballast(i - SWEEP_WRITES)
        } else if i < SWEEP_WRITES + BALLAST_WRITES + SWEEP_WRITES {
            read(i - SWEEP_WRITES - BALLAST_WRITES)
        } else if i < SWEEP_WRITES + 2 * BALLAST_WRITES + SWEEP_WRITES {
            ballast(i - 2 * SWEEP_WRITES - BALLAST_WRITES)
        } else if i < SWEEP_TOTAL_OPS {
            read(i - SWEEP_WRITES - 2 * BALLAST_WRITES - SWEEP_WRITES)
        } else {
            None
        }
    }
}

fn base_config(seed: u64, faults: FaultPlan) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = NODES as u32;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        // tiny() models the paper's store (no data checksums); integrity
        // tests need the read-path CRCs on.
        cos: CosOptions {
            checksums: true,
            ..CosOptions::tiny()
        },
        ..OsdConfig::default()
    };
    cfg.faults = faults;
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    cfg
}

/// Everything one integrity run observes, flattened so determinism checks
/// are plain equality.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    writes: u64,
    reads: u64,
    errors: u64,
    scrubs_completed: u64,
    errors_found: u64,
    errors_repaired: u64,
    scrub_throttled_nanos: u64,
    read_checksum_errors: u64,
    acked: u64,
    checked: u64,
    stuck: Vec<String>,
    divergence: Vec<String>,
    digests: Vec<String>,
    fingerprint: Vec<u64>,
}

fn run(cfg: ClusterSimConfig, conns: u64, measure: SimDuration) -> Outcome {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..conns)
        .map(|c| Box::new(IntegrityConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let objects: Vec<(ObjectId, u64)> = (0..conns)
        .flat_map(|c| (0..8).map(move |k| (oid(c, k), OBJECT_BYTES)))
        .collect();
    run_with(cfg, wl, &objects, measure)
}

fn run_with(
    cfg: ClusterSimConfig,
    wl: Vec<Box<dyn ConnWorkload>>,
    objects: &[(ObjectId, u64)],
    measure: SimDuration,
) -> Outcome {
    let mut sim = ClusterSim::new(cfg, wl);
    sim.prefill(objects);
    let report = sim.run(SimDuration::ZERO, measure);
    let checker = sim.checker().expect("history checking enabled");
    let acked = checker.writes_acked();
    let checked = checker.reads_checked();
    let stuck = sim.stuck_pgs();
    let divergence = sim.replica_divergence();
    let digests = sim.replica_digest_inconsistency();
    let mut fingerprint = vec![
        report.duration.as_nanos(),
        report.writes_done,
        report.reads_done,
        report.client_errors,
        report.context_switches,
        report.events_processed,
        report.recovery_pushes,
        report.backfill_bytes,
        report.scrubs_completed,
        report.scrub_errors_found,
        report.scrub_errors_repaired,
        report.scrub_bytes,
        report.scrub_throttled_nanos,
        report.read_checksum_errors,
        acked,
        checked,
    ];
    let wf = report.write_lat.fields();
    let rf = report.read_lat.fields();
    fingerprint.extend(wf.iter().chain(rf.iter()).map(|d| d.as_nanos()));
    Outcome {
        writes: report.writes_done,
        reads: report.reads_done,
        errors: report.client_errors,
        scrubs_completed: report.scrubs_completed,
        errors_found: report.scrub_errors_found,
        errors_repaired: report.scrub_errors_repaired,
        scrub_throttled_nanos: report.scrub_throttled_nanos,
        read_checksum_errors: report.read_checksum_errors,
        acked,
        checked,
        stuck,
        divergence,
        digests,
        fingerprint,
    }
}

/// Shared assertions: ops resolved, nothing lost, cluster healed, replicas
/// clean down to checksum metadata.
fn assert_healed(o: &Outcome, conns: u64) -> Result<(), TestCaseError> {
    let total_ops = conns * (WRITES_PER_CONN + READS_PER_CONN);
    prop_assert!(
        o.writes + o.reads + o.errors >= total_ops,
        "all ops resolved: {}+{}+{} of {total_ops}",
        o.writes,
        o.reads,
        o.errors
    );
    prop_assert!(
        o.writes >= conns * WRITES_PER_CONN / 2,
        "most writes completed: {}",
        o.writes
    );
    prop_assert!(o.acked >= o.writes, "every counted write was vetted");
    prop_assert!(o.checked >= o.reads, "every read was vetted");
    prop_assert!(
        o.stuck.is_empty(),
        "every PG is Active after quiesce: {:?}",
        o.stuck
    );
    prop_assert!(
        o.divergence.is_empty(),
        "replicas byte-identical after healing: {:?}",
        o.divergence
    );
    prop_assert!(
        o.digests.is_empty(),
        "replica checksum metadata consistent after healing: {:?}",
        o.digests
    );
    Ok(())
}

/// One bit-rot chaos case: where the rot lands, how hard, and how the scrub
/// cadence is tuned. All strikes target a single OSD, so no object ever has
/// `size` (= 2) corrupt replicas — the regime the headline invariant covers.
#[derive(Debug, Clone, Copy)]
struct RotScenario {
    seed: u64,
    rot_osd: u8,
    flips: u32,
    rot_at_ms: u64,
    second_strike: bool,
    deep_every: u64,
}

fn rot_scenarios() -> impl Strategy<Value = RotScenario> {
    (
        any::<u64>(),
        0u8..NODES as u8,
        16u32..96,
        6u64..40,
        any::<bool>(),
        1u64..4,
    )
        .prop_map(
            |(seed, rot_osd, flips, rot_at_ms, second_strike, deep_every)| RotScenario {
                seed,
                rot_osd,
                flips,
                rot_at_ms,
                second_strike,
                deep_every,
            },
        )
}

fn rot_config(s: &RotScenario) -> ClusterSimConfig {
    let mut plan = FaultPlan::none().with_bit_rot(BitRotSchedule {
        process: s.rot_osd as usize,
        at: ms(s.rot_at_ms),
        object_lo: 0,
        object_hi: 1 << 16,
        flips: s.flips,
        media: RotMedia::CosData,
    });
    if s.second_strike {
        plan = plan.with_bit_rot(BitRotSchedule {
            process: s.rot_osd as usize,
            at: ms(s.rot_at_ms + 25),
            object_lo: 0,
            object_hi: 1 << 16,
            flips: s.flips / 2 + 1,
            media: RotMedia::CosData,
        });
    }
    let mut cfg = base_config(s.seed, plan);
    cfg.scrub_interval = Some(SimDuration::millis(10));
    cfg.scrub_deep_every = s.deep_every;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(6)))]

    /// Headline invariant: bit rot on one OSD, background deep scrub armed.
    /// No acked write is lost, no corrupt byte is ever returned to a client
    /// (checker), and the cluster quiesces Active with byte-identical,
    /// digest-consistent replicas.
    #[test]
    fn scrub_heals_single_osd_bit_rot(s in rot_scenarios()) {
        let o = run(rot_config(&s), CONNS, SimDuration::secs(5));
        assert_healed(&o, CONNS)?;
        prop_assert!(
            o.scrubs_completed >= 1,
            "scrub actually ran: {}",
            o.scrubs_completed
        );
        prop_assert!(
            o.errors_repaired <= o.errors_found,
            "repairs never exceed findings: {} repaired of {} found",
            o.errors_repaired,
            o.errors_found
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(3)))]

    /// The whole rot history is seed-reproducible, and reproducible across
    /// the wheel and heap schedulers: four runs, one fingerprint.
    #[test]
    fn bit_rot_history_is_scheduler_independent(s in rot_scenarios()) {
        let mut wheel = rot_config(&s);
        wheel.scheduler = SchedulerKind::Wheel;
        let a = run(wheel, CONNS, SimDuration::secs(5));
        let mut wheel2 = rot_config(&s);
        wheel2.scheduler = SchedulerKind::Wheel;
        let b = run(wheel2, CONNS, SimDuration::secs(5));
        prop_assert_eq!(&a, &b, "same seed, same scheduler: identical history");
        let mut heap = rot_config(&s);
        heap.scheduler = SchedulerKind::Heap;
        let c = run(heap, CONNS, SimDuration::secs(5));
        prop_assert_eq!(
            &a.fingerprint, &c.fingerprint,
            "wheel and heap replay the same rot history"
        );
        assert_healed(&a, CONNS)?;
    }
}

/// Rot in the NVM operation log is latent — the in-memory mirror stays
/// clean — until a crash forces recovery to replay the log from the device.
/// Truncating recovery drops the damaged suffix, peering re-heals the lost
/// tail from the surviving replicas, and deep scrub mops up anything the
/// log replay re-applied over rotted backend state.
#[test]
fn nvm_log_rot_surfaces_at_crash_and_heals() {
    let plan = FaultPlan::none()
        .with_bit_rot(BitRotSchedule {
            process: 1,
            at: ms(6),
            object_lo: 0,
            object_hi: 1 << 16,
            flips: 24,
            media: RotMedia::NvmLog,
        })
        .with_crash(CrashSchedule {
            process: 1,
            at: ms(10),
            restart_at: Some(ms(20)),
            torn_tail: false,
        });
    let mut cfg = base_config(0xB17_0707, plan);
    cfg.scrub_interval = Some(SimDuration::millis(10));
    cfg.scrub_deep_every = 1;
    let o = run(cfg, CONNS, SimDuration::secs(5));
    assert_healed(&o, CONNS).unwrap_or_else(|e| panic!("{e}"));
}

/// The dedicated read-path story, scrub disabled so read-repair carries the
/// whole load: corrupt one object's blocks on the primary that serves it,
/// read every block back. Each corrupt read must surface internally as a
/// checksum mismatch (never as wrong bytes — the checker vets every read),
/// the client must redirect to a clean replica, and the detection must
/// leave a repaired replica behind: byte-identical, digest-consistent.
#[test]
fn corrupted_replica_read_redirects_and_heals() {
    // Object raw id g lives in group g; rot the primary of group 0 and
    // restrict the strike to exactly that object.
    let primary = OsdMap::new(NODES as u32, 1, PGS, 2)
        .try_primary(GroupId(0))
        .expect("a full map always has a primary")
        .0 as usize;
    let plan = FaultPlan::none().with_bit_rot(BitRotSchedule {
        process: primary,
        at: ms(24),
        object_lo: 0,
        object_hi: 1,
        flips: 64,
        media: RotMedia::CosData,
    });
    let cfg = base_config(0x0DD_B175, plan); // scrub_interval stays None
    let wl: Vec<Box<dyn ConnWorkload>> = vec![Box::new(FullSweepConn { cursor: 0 })];
    let objects: Vec<(ObjectId, u64)> = (0..8)
        .map(|k| (oid(0, k), OBJECT_BYTES))
        .chain((0..8).map(|j| (ballast_oid(j), OBJECT_BYTES)))
        .collect();
    let o = run_with(cfg, wl, &objects, SimDuration::secs(5));
    let total = SWEEP_TOTAL_OPS;
    assert!(
        o.writes + o.reads + o.errors >= total,
        "all ops resolved: {}+{}+{} of {total}",
        o.writes,
        o.reads,
        o.errors
    );
    assert_eq!(o.errors, 0, "redirects absorb every checksum mismatch");
    assert!(
        o.read_checksum_errors >= 1,
        "the corrupt read was detected on the rotted primary: {}",
        o.read_checksum_errors
    );
    assert_eq!(o.scrubs_completed, 0, "scrub stayed out of this one");
    assert!(o.stuck.is_empty(), "PGs Active: {:?}", o.stuck);
    assert!(
        o.divergence.is_empty(),
        "read-repair left a healed replica behind: {:?}",
        o.divergence
    );
    assert!(
        o.digests.is_empty(),
        "checksum metadata consistent after read-repair: {:?}",
        o.digests
    );
}

/// Deep scrub charges the shared recovery byte budget. With a budget
/// smaller than one group's tracked bytes, scrub rounds must defer across
/// throttle windows — visible as `scrub_throttled_nanos` in the report —
/// yet still complete and heal.
#[test]
fn deep_scrub_is_throttle_bounded() {
    let plan = FaultPlan::none().with_bit_rot(BitRotSchedule {
        process: 2,
        at: ms(8),
        object_lo: 0,
        object_hi: 1 << 16,
        flips: 128,
        media: RotMedia::CosData,
    });
    let mut cfg = base_config(0x7807_713D, plan);
    // Two 48 KiB objects per group; a 64 KiB budget admits at most one
    // group per 1 ms window, so concurrent deep scrubs must queue.
    cfg.osd.backfill_bytes_per_tick = 64 << 10;
    cfg.scrub_interval = Some(SimDuration::millis(5));
    cfg.scrub_deep_every = 1;
    let o = run(cfg, CONNS, SimDuration::secs(5));
    assert_healed(&o, CONNS).unwrap_or_else(|e| panic!("{e}"));
    assert!(o.scrubs_completed >= 1, "deep scrub ran");
    assert!(
        o.scrub_throttled_nanos > 0,
        "the byte budget actually deferred scrub work: {}",
        o.scrub_throttled_nanos
    );
}

/// Scrub is a background citizen: on a healthy cluster, running it must not
/// change anything a client can see — same completed ops, same checker
/// verdicts, no errors either way. (Latency and CPU accounting may shift;
/// correctness may not.)
#[test]
fn scrub_on_vs_off_client_outcomes_identical() {
    let off = run(
        base_config(0x5C12B, FaultPlan::none()),
        CONNS,
        SimDuration::secs(5),
    );
    let mut on_cfg = base_config(0x5C12B, FaultPlan::none());
    on_cfg.scrub_interval = Some(SimDuration::millis(5));
    on_cfg.scrub_deep_every = 2;
    let on = run(on_cfg, CONNS, SimDuration::secs(5));
    assert_eq!(off.scrubs_completed, 0);
    assert!(on.scrubs_completed >= 1, "scrub ran in the armed config");
    assert_eq!(on.errors_found, 0, "a healthy cluster scrubs clean");
    for o in [&off, &on] {
        assert_eq!(o.errors, 0, "no client errors on a healthy cluster");
        assert!(o.stuck.is_empty() && o.divergence.is_empty() && o.digests.is_empty());
    }
    assert_eq!(
        (off.writes, off.reads, off.acked, off.checked),
        (on.writes, on.reads, on.acked, on.checked),
        "client-visible outcomes identical with scrub on vs off"
    );
}
