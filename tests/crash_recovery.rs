//! Crash-consistency tests across the storage stack.
//!
//! The paper's durability story (§IV-A-4, §IV-C-6): the NVM operation log
//! is the REDO log; the backend stores recover their own structures from
//! disk; replaying the log on top restores exactly the acknowledged state.
//! These tests inject crashes at every layer and verify nothing
//! acknowledged is lost and nothing torn is resurrected.

use rablock_cos::{CosObjectStore, CosOptions};
use rablock_lsm::{Db, LsmObjectStore, LsmOptions};
use rablock_oplog::GroupLog;
use rablock_storage::{
    BlockDevice, CrashDisk, CrashPlan, GroupId, MemDisk, NvmRegion, ObjectId, ObjectStore, Op,
    StoreError, Transaction,
};

fn oid(i: u64) -> ObjectId {
    ObjectId::new(GroupId(0), i)
}

fn write_txn(seq: u64, o: ObjectId, offset: u64, data: Vec<u8>) -> Transaction {
    Transaction::new(
        GroupId(0),
        seq,
        vec![Op::Write {
            oid: o,
            offset,
            data: data.into(),
        }],
    )
}

#[test]
fn lsm_crash_loses_nothing_acknowledged() {
    // Every apply() in the LSM is WAL-durable before returning, so a crash
    // that drops unflushed *device* writes must still recover every batch.
    let mut db = Db::open(CrashDisk::new(16 << 20), LsmOptions::tiny()).unwrap();
    for i in 0..500u64 {
        let k = format!("key{:04}", i % 100).into_bytes();
        db.apply(&[(k, Some(vec![i as u8; 64]))]).unwrap();
        while db.needs_maintenance() {
            db.maintenance().unwrap();
        }
    }
    let mut dev = db.into_device();
    dev.crash_with(CrashPlan::lose_all());
    let mut db2 = Db::open(dev, LsmOptions::tiny()).unwrap();
    for i in 0..100u64 {
        let k = format!("key{:04}", i).into_bytes();
        // The newest value for key i%100 is from the last round that wrote it.
        let newest = (0..500u64).rev().find(|j| j % 100 == i).unwrap();
        assert_eq!(
            db2.get(&k).unwrap(),
            Some(vec![newest as u8; 64]),
            "key {i}"
        );
    }
}

#[test]
fn lsm_torn_wal_tail_is_dropped_cleanly() {
    let mut db = Db::open(CrashDisk::new(16 << 20), LsmOptions::tiny()).unwrap();
    db.apply(&[(b"committed".to_vec(), Some(b"yes".to_vec()))])
        .unwrap();
    let mut dev = db.into_device();
    // Tear the very last write (the most recent WAL record).
    let pending = dev.pending_writes();
    dev.crash_with(CrashPlan::keep_torn(pending));
    let mut db2 = Db::open(dev, LsmOptions::tiny()).unwrap();
    // Either the record survived its CRC or was dropped — never garbage.
    if let Some(v) = db2.get(b"committed").unwrap() {
        assert_eq!(v, b"yes");
    }
}

#[test]
fn cos_mount_replays_to_acknowledged_state_via_oplog() {
    // The full §IV-C-6 flow: transactions land in the NVM operation log
    // first; some are flushed to the store; the node crashes losing
    // unflushed DEVICE writes (NVM survives). Recovery = mount the store
    // (rebuild allocator/index from onodes) + REDO the operation log.
    let opts = CosOptions {
        metadata_cache: false,
        ..CosOptions::tiny()
    };
    let mut store = CosObjectStore::format(CrashDisk::new(64 << 20), opts.clone()).unwrap();
    let mut nvm = NvmRegion::new(1 << 20);
    let mut log = GroupLog::format(&mut nvm, GroupId(0), 0, 1 << 20, 16).unwrap();

    store
        .submit(Transaction::new(
            GroupId(0),
            0,
            vec![Op::Create {
                oid: oid(1),
                size: 1 << 20,
            }],
        ))
        .unwrap();
    // 20 acknowledged writes: all logged; only the first 10 flushed.
    for seq in 1..=20u64 {
        let txn = write_txn(seq, oid(1), (seq % 8) * 4096, vec![seq as u8; 4096]);
        log.append(&mut nvm, txn).unwrap();
    }
    let flushed = log.drain_for_flush(&mut nvm, 10).unwrap();
    for txn in flushed {
        store.submit(txn).unwrap();
    }
    // Make the flushed state durable, then crash with whatever later
    // device writes were still in flight.
    let mut dev = store.into_device();
    dev.flush().unwrap();
    dev.crash_with(CrashPlan::lose_all());
    nvm.reboot();

    // Recovery: mount + replay the log (REDO).
    let mut store2 = CosObjectStore::mount(dev, opts).unwrap();
    let log2 = GroupLog::recover(&mut nvm, GroupId(0), 0, 1 << 20, 16).unwrap();
    assert_eq!(log2.pending(), 10, "unflushed suffix survives in NVM");
    for rec in log2.export_records() {
        store2.submit(rec.txn).unwrap();
    }
    // Every block holds the newest acknowledged write for that offset.
    for block in 0..8u64 {
        let newest = (1..=20u64).rev().find(|s| s % 8 == block).unwrap();
        assert_eq!(
            store2.read(oid(1), block * 4096, 4096).unwrap(),
            vec![newest as u8; 4096],
            "block {block}"
        );
    }
}

#[test]
fn cos_recovers_even_when_everything_unflushed_is_lost() {
    let opts = CosOptions::tiny();
    let store = CosObjectStore::format(CrashDisk::new(64 << 20), opts.clone()).unwrap();
    let mut dev = store.into_device();
    dev.flush().unwrap();

    let mut nvm = NvmRegion::new(1 << 20);
    let mut log = GroupLog::format(&mut nvm, GroupId(0), 0, 1 << 20, 16).unwrap();
    for seq in 1..=5u64 {
        log.append(&mut nvm, write_txn(seq, oid(2), 0, vec![seq as u8; 128]))
            .unwrap();
    }
    // Crash before ANY flush reached the device.
    dev.crash_with(CrashPlan::lose_all());
    nvm.reboot();

    let mut store2 = CosObjectStore::mount(dev, opts).unwrap();
    let log2 = GroupLog::recover(&mut nvm, GroupId(0), 0, 1 << 20, 16).unwrap();
    for rec in log2.export_records() {
        store2.submit(rec.txn).unwrap();
    }
    assert_eq!(store2.read(oid(2), 0, 128).unwrap(), vec![5u8; 128]);
}

#[test]
fn lsm_store_recovers_objects_after_crash() {
    let mut s = LsmObjectStore::open(CrashDisk::new(32 << 20), LsmOptions::tiny()).unwrap();
    for seq in 1..=50u64 {
        s.submit(write_txn(
            seq,
            oid(seq % 5),
            (seq % 4) * 4096,
            vec![seq as u8; 4096],
        ))
        .unwrap();
        while s.needs_maintenance() {
            s.maintenance();
        }
    }
    let mut dev = s.into_device();
    dev.crash_with(CrashPlan::lose_all());
    let mut s2 = LsmObjectStore::open(dev, LsmOptions::tiny()).unwrap();
    for obj in 0..5u64 {
        for block in 0..4u64 {
            let newest = (1..=50u64).rev().find(|s| s % 5 == obj && s % 4 == block);
            if let Some(n) = newest {
                assert_eq!(
                    s2.read(oid(obj), block * 4096, 4096).unwrap(),
                    vec![n as u8; 4096],
                    "obj {obj} block {block}"
                );
            }
        }
    }
}

#[test]
fn oplog_partial_nvm_record_is_detected() {
    // NVM is byte-addressable; a record is acknowledged only after the
    // append returns. Corrupt the newest record to emulate an interrupted
    // append: recovery must fail loudly (CRC), not return garbage.
    let mut nvm = NvmRegion::new(64 << 10);
    let mut log = GroupLog::format(&mut nvm, GroupId(0), 0, 64 << 10, 16).unwrap();
    log.append(&mut nvm, write_txn(1, oid(1), 0, vec![1; 256]))
        .unwrap();
    let used = log.nvm_used();
    // Smash a byte in the middle of the (only) record.
    let probe = 48 + used / 2;
    let b = nvm.read(probe, 1).unwrap()[0];
    nvm.write(probe, &[b ^ 0xFF]).unwrap();
    nvm.reboot();
    let err = GroupLog::recover(&mut nvm, GroupId(0), 0, 64 << 10, 16);
    assert!(matches!(err, Err(StoreError::Corrupt(_))), "got {err:?}");
}

#[test]
fn replication_plus_recovery_preserves_acknowledged_writes_cluster_wide() {
    // Mini cluster-level scenario at the store level: primary and replica
    // each hold the log; the primary's device dies entirely; the replica's
    // log + store reconstruct every acknowledged write.
    let opts = CosOptions::tiny();
    let mut primary_nvm = NvmRegion::new(1 << 20);
    let mut replica_nvm = NvmRegion::new(1 << 20);
    let mut primary_log = GroupLog::format(&mut primary_nvm, GroupId(0), 0, 1 << 20, 16).unwrap();
    let mut replica_log = GroupLog::format(&mut replica_nvm, GroupId(0), 0, 1 << 20, 16).unwrap();
    let mut replica_store = CosObjectStore::format(MemDisk::new(64 << 20), opts).unwrap();

    for seq in 1..=12u64 {
        let txn = write_txn(seq, oid(3), (seq % 4) * 4096, vec![seq as u8; 4096]);
        primary_log.append(&mut primary_nvm, txn.clone()).unwrap();
        replica_log.append(&mut replica_nvm, txn).unwrap();
    }
    // Primary vanishes. The replica flushes its log and serves reads.
    for txn in replica_log
        .drain_for_flush(&mut replica_nvm, usize::MAX)
        .unwrap()
    {
        replica_store.submit(txn).unwrap();
    }
    for block in 0..4u64 {
        let newest = (1..=12u64).rev().find(|s| s % 4 == block).unwrap();
        assert_eq!(
            replica_store.read(oid(3), block * 4096, 4096).unwrap(),
            vec![newest as u8; 4096]
        );
    }
}
