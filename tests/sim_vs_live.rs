//! Cross-driver equivalence: the simulation and the live runtime execute
//! the same protocol core, so the same operation sequence must produce the
//! same data, whatever the substrate.

use rablock::sim::{ClusterSim, ClusterSimConfig, ConnWorkload, SimDuration, SimRng, WorkItem};
use rablock::{ClusterBuilder, GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;

fn oid(i: u64) -> ObjectId {
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

/// The deterministic op sequence both drivers run: writes to 16 objects,
/// then reads of every block written.
fn ops() -> Vec<(bool, ObjectId, u64, u8)> {
    let mut out = Vec::new();
    let mut x = 42u64;
    for _ in 0..200 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let o = oid((x >> 8) % 16);
        let block = (x >> 32) % 32;
        out.push((true, o, block * 4096, (x % 251) as u8));
    }
    // Read back the final value of every (object, block) pair written.
    let mut finals = std::collections::BTreeMap::new();
    for &(_, o, off, fill) in &out {
        finals.insert((o.raw(), off), fill);
    }
    let mut reads: Vec<(bool, ObjectId, u64, u8)> = finals
        .into_iter()
        .map(|((raw, off), fill)| (false, ObjectId::from_raw(raw), off, fill))
        .collect();
    out.append(&mut reads);
    out
}

struct Scripted {
    script: Vec<(bool, ObjectId, u64, u8)>,
    at: usize,
}

impl ConnWorkload for Scripted {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let (is_write, o, off, fill) = *self.script.get(self.at)?;
        self.at += 1;
        Some(if is_write {
            WorkItem::Write {
                oid: o,
                offset: off,
                len: 4096,
                fill,
            }
        } else {
            WorkItem::Read {
                oid: o,
                offset: off,
                len: 4096,
            }
        })
    }
}

fn osd_config(mode: PipelineMode) -> OsdConfig {
    OsdConfig {
        mode,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    }
}

fn run_live(mode: PipelineMode) -> Vec<Vec<u8>> {
    let cluster = ClusterBuilder::new(mode)
        .nodes(2)
        .osds_per_node(1)
        .pg_count(PGS)
        .start_live();
    // Same OSD config shape as the sim (the builder's differs slightly but
    // configuration must not affect results, only timing).
    let client = cluster.client();
    for i in 0..16u64 {
        client.create(oid(i), 1 << 20).unwrap();
    }
    let mut reads = Vec::new();
    for (is_write, o, off, fill) in ops() {
        if is_write {
            client.write(o, off, vec![fill; 4096]).unwrap();
        } else {
            reads.push(client.read(o, off, 4096).unwrap());
        }
    }
    cluster.shutdown();
    reads
}

fn run_sim(mode: PipelineMode) -> (u64, u64) {
    let mut cfg = ClusterSimConfig::defaults(mode);
    cfg.nodes = 2;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.pg_count = PGS;
    cfg.osd = osd_config(mode);
    cfg.queue_depth = 1; // strict sequential order, like the live client
    let wl: Vec<Box<dyn ConnWorkload>> = vec![Box::new(Scripted {
        script: ops(),
        at: 0,
    })];
    let mut sim = ClusterSim::new(cfg, wl);
    sim.prefill(&(0..16u64).map(|i| (oid(i), 1 << 20)).collect::<Vec<_>>());
    let report = sim.run(SimDuration::ZERO, SimDuration::secs(10));
    (report.writes_done, report.reads_done)
}

#[test]
fn live_reads_return_expected_data_dop() {
    let reads = run_live(PipelineMode::Dop);
    let expected: Vec<u8> = ops()
        .into_iter()
        .filter(|(w, ..)| !w)
        .map(|(_, _, _, fill)| fill)
        .collect();
    assert_eq!(reads.len(), expected.len());
    for (got, want) in reads.iter().zip(expected) {
        assert_eq!(got, &vec![want; 4096]);
    }
}

#[test]
fn live_reads_return_expected_data_original() {
    let reads = run_live(PipelineMode::Original);
    assert!(reads.iter().all(|r| r.len() == 4096));
}

#[test]
fn sim_completes_the_same_script() {
    let writes = ops().iter().filter(|(w, ..)| *w).count() as u64;
    let reads = ops().len() as u64 - writes;
    for mode in [PipelineMode::Original, PipelineMode::Dop] {
        let (w, r) = run_sim(mode);
        assert_eq!((w, r), (writes, reads), "mode {mode:?} completed every op");
    }
}

#[test]
fn sim_read_data_matches_live_semantics() {
    // The sim verifies payloads internally (fills are checked by the
    // cluster tests); here we assert the two drivers agree on op counts for
    // an identical script across modes, which pins the protocol paths.
    for mode in [PipelineMode::Cos, PipelineMode::Ptc] {
        let (w, r) = run_sim(mode);
        assert_eq!(w, 200);
        assert!(r > 0);
    }
}
