//! Chaos testing: randomized fault schedules over a replicated workload.
//!
//! Each proptest case derives a seeded [`FaultPlan`] combining every fault
//! class — probabilistic link drops/duplicates/reordering/latency spikes, a
//! node-pair partition window, a gray-failure device slowdown, and an OSD
//! crash with restart (optionally with a torn NVM log tail) — and runs a
//! 3-node replicated write/read workload through it with heartbeat failure
//! detection, client timeout/retry, and the history checker armed.
//!
//! Two properties:
//! 1. No acknowledged write is ever lost and every read is explainable
//!    (the checker panics the run otherwise).
//! 2. The whole fault history is seed-reproducible: running the identical
//!    configuration twice yields byte-identical outcome counters.

use proptest::prelude::*;
use rablock::sim::{
    ClusterSim, ClusterSimConfig, ConnWorkload, CrashSchedule, FaultPlan, GrayWindow, LinkFault,
    Partition, RetryPolicy, SimDuration, SimRng, SimTime, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;
const NODES: usize = 3;
const CONNS: u64 = 2;
const WRITES_PER_CONN: u64 = 96;
const READS_PER_CONN: u64 = 24;

/// Objects are namespaced per connection so no block has two writers —
/// the history checker's last-acked-value rule then has a unique answer.
fn oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

/// Everything one chaos case is derived from.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    /// Which link pair to partition: 0..3 = storage pairs, 3 = client↔node.
    pair: u8,
    part_from_ms: u64,
    part_len_ms: u64,
    crash_osd: u8,
    torn_tail: bool,
    gray_mult: f64,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        0.002f64..0.03,
        0u8..8,
        (3u64..20, 5u64..20),
        (0u8..3, any::<bool>()),
        2.0f64..24.0,
    )
        .prop_map(
            |(
                seed,
                drop_p,
                pair,
                (part_from_ms, part_len_ms),
                (crash_osd, torn_tail),
                gray_mult,
            )| {
                Scenario {
                    seed,
                    drop_p,
                    dup_p: drop_p / 2.0,
                    pair: pair % 4,
                    part_from_ms,
                    part_len_ms,
                    crash_osd,
                    torn_tail,
                    gray_mult,
                }
            },
        )
}

/// Builds the fault plan for one scenario: all four fault classes at once.
fn plan(s: &Scenario) -> FaultPlan {
    // The client pseudo-node index is one past the last storage node.
    let client = NODES;
    let (a, b) = match s.pair {
        0 => (0, 1),
        1 => (1, 2),
        2 => (0, 2),
        _ => (client, (s.part_from_ms % NODES as u64) as usize),
    };
    FaultPlan::none()
        .with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(10_000),
            drop_p: s.drop_p,
            dup_p: s.dup_p,
            reorder_p: 0.05,
            reorder_max: SimDuration::nanos(200_000),
            spike_p: 0.02,
            spike: SimDuration::nanos(500_000),
        })
        .with_partition(Partition {
            a,
            b,
            from: ms(s.part_from_ms),
            until: ms(s.part_from_ms + s.part_len_ms),
        })
        .with_gray_window(GrayWindow {
            // Device index mirrors OSD index; slow a survivor of the crash.
            device: (s.crash_osd as usize + 1) % NODES,
            from: ms(2),
            until: ms(25),
            multiplier: s.gray_mult,
        })
        .with_crash(CrashSchedule {
            process: s.crash_osd as usize,
            at: ms(4 + s.part_from_ms % 5),
            restart_at: Some(ms(30 + s.part_len_ms)),
            torn_tail: s.torn_tail,
        })
}

fn config(s: &Scenario) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = NODES as u32;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.seed = s.seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    cfg.faults = plan(s);
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    cfg
}

struct ChaosConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for ChaosConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < WRITES_PER_CONN {
            let k = i % 8;
            let block = (i / 8) % 16;
            Some(WorkItem::Write {
                oid: oid(self.conn, k),
                offset: block * 4096,
                len: 4096,
                fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
            })
        } else if i < WRITES_PER_CONN + READS_PER_CONN {
            let j = i - WRITES_PER_CONN;
            Some(WorkItem::Read {
                oid: oid(self.conn, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

/// One full chaos run; returns the outcome counters that must reproduce.
fn run(s: &Scenario) -> (u64, u64, u64, u64, u64, u64, u64) {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut sim = ClusterSim::new(config(s), wl);
    let objects: Vec<(ObjectId, u64)> = (0..CONNS)
        .flat_map(|c| (0..8).map(move |k| (oid(c, k), 1 << 20)))
        .collect();
    sim.prefill(&objects);
    let report = sim.run(SimDuration::ZERO, SimDuration::secs(5));
    let checker = sim.checker().expect("history checking enabled");
    (
        report.writes_done,
        report.reads_done,
        report.client_errors,
        report.nvm_bytes,
        report.context_switches,
        checker.writes_acked(),
        checker.reads_checked(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under a randomized mix of drops, duplicates, reordering, a partition,
    /// a gray device, and a crash/restart: no acked write is lost, every
    /// read is explainable (checker panics otherwise), the cluster makes
    /// progress, and the same seed replays the identical history.
    #[test]
    fn invariants_hold_and_history_replays(s in scenarios()) {
        let first = run(&s);
        let (writes, reads, errors, _, _, acked, checked) = first;
        // Progress: the retry path pushes most ops through the fault window.
        let total_ops = CONNS * (WRITES_PER_CONN + READS_PER_CONN);
        prop_assert!(
            writes + reads + errors >= total_ops,
            "all ops resolved (done or surfaced): {writes}+{reads}+{errors} of {total_ops}"
        );
        prop_assert!(writes >= CONNS * WRITES_PER_CONN / 2, "most writes completed: {writes}");
        prop_assert!(acked >= writes, "every counted write was vetted: {acked} >= {writes}");
        prop_assert!(checked >= reads, "every read was vetted: {checked} >= {reads}");

        // Determinism: an identical configuration replays byte-identically.
        let second = run(&s);
        prop_assert_eq!(first, second, "same seed, same fault history, same outcome");
    }
}
