//! Chaos testing: randomized fault schedules over a replicated workload.
//!
//! Each proptest case derives a seeded [`FaultPlan`] combining every fault
//! class — probabilistic link drops/duplicates/reordering/latency spikes, a
//! node-pair partition window, a gray-failure device slowdown, and an OSD
//! crash with restart (optionally with a torn NVM log tail) — and runs a
//! 3-node replicated write/read workload through it with heartbeat failure
//! detection, client timeout/retry, and the history checker armed.
//!
//! Two properties:
//! 1. No acknowledged write is ever lost and every read is explainable
//!    (the checker panics the run otherwise).
//! 2. The whole fault history is seed-reproducible: running the identical
//!    configuration twice yields byte-identical outcome counters.

use proptest::prelude::*;
use rablock::sim::{
    ChurnOp, ClusterSim, ClusterSimConfig, ConnWorkload, CrashSchedule, FaultPlan, GrayWindow,
    LinkFault, Partition, RetryPolicy, SimDuration, SimRng, SimTime, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cluster::placement::{OsdMap, DEFAULT_OSD_WEIGHT};
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;
const NODES: usize = 3;
const CONNS: u64 = 2;
const WRITES_PER_CONN: u64 = 96;
const READS_PER_CONN: u64 = 24;

/// Objects are namespaced per connection so no block has two writers —
/// the history checker's last-acked-value rule then has a unique answer.
fn oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

/// Case count, honoring `PROPTEST_CASES` — an explicit `with_cases` value
/// otherwise shadows the environment variable, and the extended-chaos CI
/// job relies on it to dial intensity up without a code change.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Everything one chaos case is derived from.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    /// Which link pair to partition: 0..3 = storage pairs, 3 = client↔node.
    pair: u8,
    part_from_ms: u64,
    part_len_ms: u64,
    crash_osd: u8,
    torn_tail: bool,
    gray_mult: f64,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        0.002f64..0.03,
        0u8..8,
        (3u64..20, 5u64..20),
        (0u8..3, any::<bool>()),
        2.0f64..24.0,
    )
        .prop_map(
            |(
                seed,
                drop_p,
                pair,
                (part_from_ms, part_len_ms),
                (crash_osd, torn_tail),
                gray_mult,
            )| {
                Scenario {
                    seed,
                    drop_p,
                    dup_p: drop_p / 2.0,
                    pair: pair % 4,
                    part_from_ms,
                    part_len_ms,
                    crash_osd,
                    torn_tail,
                    gray_mult,
                }
            },
        )
}

/// Builds the fault plan for one scenario: all four fault classes at once.
fn plan(s: &Scenario) -> FaultPlan {
    // The client pseudo-node index is one past the last storage node.
    let client = NODES;
    let (a, b) = match s.pair {
        0 => (0, 1),
        1 => (1, 2),
        2 => (0, 2),
        _ => (client, (s.part_from_ms % NODES as u64) as usize),
    };
    FaultPlan::none()
        .with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(10_000),
            drop_p: s.drop_p,
            dup_p: s.dup_p,
            reorder_p: 0.05,
            reorder_max: SimDuration::nanos(200_000),
            spike_p: 0.02,
            spike: SimDuration::nanos(500_000),
        })
        .with_partition(Partition {
            a,
            b,
            from: ms(s.part_from_ms),
            until: ms(s.part_from_ms + s.part_len_ms),
        })
        .with_gray_window(GrayWindow {
            // Device index mirrors OSD index; slow a survivor of the crash.
            device: (s.crash_osd as usize + 1) % NODES,
            from: ms(2),
            until: ms(25),
            multiplier: s.gray_mult,
        })
        .with_crash(CrashSchedule {
            process: s.crash_osd as usize,
            at: ms(4 + s.part_from_ms % 5),
            restart_at: Some(ms(30 + s.part_len_ms)),
            torn_tail: s.torn_tail,
        })
}

fn base_config(seed: u64, faults: FaultPlan) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = NODES as u32;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        // tiny() models the paper's store (no data checksums); keep the
        // read-path CRCs on so the digest-consistency invariant has teeth.
        cos: CosOptions {
            checksums: true,
            ..CosOptions::tiny()
        },
        ..OsdConfig::default()
    };
    cfg.faults = faults;
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    cfg
}

fn config(s: &Scenario) -> ClusterSimConfig {
    base_config(s.seed, plan(s))
}

struct ChaosConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for ChaosConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < WRITES_PER_CONN {
            let k = i % 8;
            let block = (i / 8) % 16;
            Some(WorkItem::Write {
                oid: oid(self.conn, k),
                offset: block * 4096,
                len: 4096,
                fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
            })
        } else if i < WRITES_PER_CONN + READS_PER_CONN {
            let j = i - WRITES_PER_CONN;
            Some(WorkItem::Read {
                oid: oid(self.conn, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

/// One full chaos run; returns the outcome counters that must reproduce.
fn run(s: &Scenario) -> (u64, u64, u64, u64, u64, u64, u64) {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut sim = ClusterSim::new(config(s), wl);
    let objects: Vec<(ObjectId, u64)> = (0..CONNS)
        .flat_map(|c| (0..8).map(move |k| (oid(c, k), 1 << 20)))
        .collect();
    sim.prefill(&objects);
    let report = sim.run(SimDuration::ZERO, SimDuration::secs(5));
    let checker = sim.checker().expect("history checking enabled");
    (
        report.writes_done,
        report.reads_done,
        report.client_errors,
        report.nvm_bytes,
        report.context_switches,
        checker.writes_acked(),
        checker.reads_checked(),
    )
}

/// Everything a convergence case is derived from. Unlike [`Scenario`],
/// faults here all end by 60 ms so the long fault-free tail of the run must
/// leave the cluster fully healed: every PG Active, replicas byte-identical.
#[derive(Debug, Clone, Copy)]
struct Convergence {
    seed: u64,
    drop_p: f64,
    crash_at_ms: u64,
    down_for_ms: u64,
    torn_tail: bool,
}

fn convergence_scenarios() -> impl Strategy<Value = Convergence> {
    (
        any::<u64>(),
        0.002f64..0.02,
        1u64..6,
        8u64..25,
        any::<bool>(),
    )
        .prop_map(
            |(seed, drop_p, crash_at_ms, down_for_ms, torn_tail)| Convergence {
                seed,
                drop_p,
                crash_at_ms,
                down_for_ms,
                torn_tail,
            },
        )
}

/// Background message chaos confined to the first 60 ms of the run.
fn converging_link_fault(drop_p: f64) -> LinkFault {
    LinkFault {
        link: None,
        from: SimTime::ZERO,
        until: ms(60),
        drop_p,
        dup_p: drop_p / 2.0,
        reorder_p: 0.05,
        reorder_max: SimDuration::nanos(200_000),
        spike_p: 0.02,
        spike: SimDuration::nanos(500_000),
    }
}

/// Outcome of a convergence run: reproducible counters, any PGs still not
/// Active after quiesce, any replica content divergence, and any replica
/// checksum-metadata (size + csum digest) inconsistency.
type ConvergenceOutcome = (
    (u64, u64, u64, u64, u64, u64, u64),
    Vec<String>,
    Vec<String>,
    Vec<String>,
);

/// One full run followed by post-quiesce health checks.
fn run_to_convergence(cfg: ClusterSimConfig) -> ConvergenceOutcome {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut sim = ClusterSim::new(cfg, wl);
    let objects: Vec<(ObjectId, u64)> = (0..CONNS)
        .flat_map(|c| (0..8).map(move |k| (oid(c, k), 1 << 20)))
        .collect();
    sim.prefill(&objects);
    let report = sim.run(SimDuration::ZERO, SimDuration::secs(5));
    let checker = sim.checker().expect("history checking enabled");
    let counters = (
        report.writes_done,
        report.reads_done,
        report.client_errors,
        report.recovery_pushes,
        report.backfill_bytes,
        checker.writes_acked(),
        checker.reads_checked(),
    );
    let stuck = sim.stuck_pgs();
    let divergence = sim.replica_divergence();
    let digests = sim.replica_digest_inconsistency();
    (counters, stuck, divergence, digests)
}

/// Shared assertions for a convergence outcome.
fn assert_converged(outcome: &ConvergenceOutcome) -> Result<(), TestCaseError> {
    let ((writes, reads, errors, pushes, _, acked, checked), stuck, divergence, digests) = outcome;
    let total_ops = CONNS * (WRITES_PER_CONN + READS_PER_CONN);
    prop_assert!(
        writes + reads + errors >= total_ops,
        "all ops resolved: {writes}+{reads}+{errors} of {total_ops}"
    );
    prop_assert!(
        *writes >= CONNS * WRITES_PER_CONN / 2,
        "most writes completed: {writes}"
    );
    prop_assert!(acked >= writes, "every counted write was vetted");
    prop_assert!(checked >= reads, "every read was vetted");
    prop_assert!(*pushes >= 1, "recovery actually ran: {pushes} pushes");
    prop_assert!(
        stuck.is_empty(),
        "every PG is Active after quiesce: {stuck:?}"
    );
    prop_assert!(
        divergence.is_empty(),
        "replicas byte-identical after recovery: {divergence:?}"
    );
    prop_assert!(
        digests.is_empty(),
        "replica checksum metadata consistent after recovery: {digests:?}"
    );
    Ok(())
}

/// Crash-and-restart faults for the primary of group 0 (the kill-primary
/// convergence scenario, shared with the pinned regressions below).
fn primary_crash_faults(c: &Convergence) -> FaultPlan {
    let primary = OsdMap::new(NODES as u32, 1, PGS, 2)
        .try_primary(GroupId(0))
        .expect("a full map always has a primary")
        .0 as usize;
    FaultPlan::none()
        .with_link_fault(converging_link_fault(c.drop_p))
        .with_crash(CrashSchedule {
            process: primary,
            at: ms(c.crash_at_ms),
            restart_at: Some(ms(c.crash_at_ms + c.down_for_ms)),
            torn_tail: c.torn_tail,
        })
}

/// Historical chaos cases that exposed real healing bugs, pinned so they
/// cannot regress silently:
///
/// * The first lost acked tail writes on surviving replicas: a map-change
///   safety flush cleared the in-flight flush window's `flushing` flag, two
///   windows overlapped, and the count-based completion drain discarded
///   records it had never submitted (fixed by version-watermark drains). It
///   also left per-block holes that the old per-object push guard then
///   ack'd away instead of healing.
/// * The second wedged a PG in `Recovering` forever: a primary that lost
///   its log tail to a torn NVM write could never out-version the replica's
///   newest entry, and the replica silently refused every (byte-identical)
///   push.
#[test]
fn healed_cluster_regressions() {
    let cases = [
        Convergence {
            seed: 1004802654027966023,
            drop_p: 0.016139760121552025,
            crash_at_ms: 5,
            down_for_ms: 9,
            torn_tail: false,
        },
        Convergence {
            seed: 13176095356723387667,
            drop_p: 0.009078494301908317,
            crash_at_ms: 1,
            down_for_ms: 18,
            torn_tail: true,
        },
    ];
    for c in cases {
        let outcome = run_to_convergence(base_config(c.seed, primary_crash_faults(&c)));
        assert_converged(&outcome).unwrap_or_else(|e| panic!("case {c:?}: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(6)))]

    /// Under a randomized mix of drops, duplicates, reordering, a partition,
    /// a gray device, and a crash/restart: no acked write is lost, every
    /// read is explainable (checker panics otherwise), the cluster makes
    /// progress, and the same seed replays the identical history.
    #[test]
    fn invariants_hold_and_history_replays(s in scenarios()) {
        let first = run(&s);
        let (writes, reads, errors, _, _, acked, checked) = first;
        // Progress: the retry path pushes most ops through the fault window.
        let total_ops = CONNS * (WRITES_PER_CONN + READS_PER_CONN);
        prop_assert!(
            writes + reads + errors >= total_ops,
            "all ops resolved (done or surfaced): {writes}+{reads}+{errors} of {total_ops}"
        );
        prop_assert!(writes >= CONNS * WRITES_PER_CONN / 2, "most writes completed: {writes}");
        prop_assert!(acked >= writes, "every counted write was vetted: {acked} >= {writes}");
        prop_assert!(checked >= reads, "every read was vetted: {checked} >= {reads}");

        // Determinism: an identical configuration replays byte-identically.
        let second = run(&s);
        prop_assert_eq!(first, second, "same seed, same fault history, same outcome");
    }

    /// Crash the primary of group 0 while client writes are replicating
    /// through it, restart it later, and require full healing: the surviving
    /// peers re-peer and push what the new member lacks, the restarted node
    /// pulls what it missed, and after quiesce every PG is Active with
    /// byte-identical replicas. The whole history is seed-reproducible.
    #[test]
    fn kill_primary_mid_replication_converges(c in convergence_scenarios()) {
        let first = run_to_convergence(base_config(c.seed, primary_crash_faults(&c)));
        assert_converged(&first)?;
        let second = run_to_convergence(base_config(c.seed, primary_crash_faults(&c)));
        prop_assert_eq!(first, second, "same seed, same recovery history");
    }

    /// Restart every node in sequence (one down at a time) and require the
    /// cluster to re-peer and heal after each membership change: after
    /// quiesce every PG is Active, replicas are byte-identical, and no
    /// acked write was lost across any of the three restarts.
    #[test]
    fn rolling_restart_converges(c in convergence_scenarios()) {
        let faults = || {
            let mut f = FaultPlan::none().with_link_fault(converging_link_fault(c.drop_p));
            for n in 0..NODES {
                // Staggered so each node is back (and re-peered) well before
                // the next one goes down.
                let at = 3 + n as u64 * 15;
                f = f.with_crash(CrashSchedule {
                    process: n,
                    at: ms(at),
                    restart_at: Some(ms(at + c.down_for_ms.min(10))),
                    torn_tail: c.torn_tail,
                });
            }
            f
        };
        let first = run_to_convergence(base_config(c.seed, faults()));
        assert_converged(&first)?;
        let second = run_to_convergence(base_config(c.seed, faults()));
        prop_assert_eq!(first, second, "same seed, same recovery history");
    }
}

// ---------------------------------------------------------------------------
// Elastic cluster operations: weighted growth, drains, and flapping storms.
//
// These scenarios exercise the admin map-mutation path (weight churn through
// the monitor), the backfill throttle, and the monitor's flap dampening, all
// under sustained client load with the history checker armed. Test names are
// prefixed `churn_` so CI can dial their intensity independently.
// ---------------------------------------------------------------------------

/// Everything an elastic-operations run observes, flattened so determinism
/// checks are plain equality. Imbalance is carried as IEEE-754 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChurnOutcome {
    writes: u64,
    reads: u64,
    errors: u64,
    pushes: u64,
    backfill_bytes: u64,
    backfill_queued: u64,
    backfill_throttled_nanos: u64,
    flaps_damped: u64,
    acked: u64,
    checked: u64,
    stuck: Vec<String>,
    divergence: Vec<String>,
    digests: Vec<String>,
    imbalance_bits: u64,
    filled_osds: usize,
}

/// One elastic-ops run: workload + churn plan in, full outcome out.
fn run_churn(
    cfg: ClusterSimConfig,
    wl: Vec<Box<dyn ConnWorkload>>,
    objects: &[(ObjectId, u64)],
    measure: SimDuration,
) -> ChurnOutcome {
    let mut sim = ClusterSim::new(cfg, wl);
    sim.prefill(objects);
    let report = sim.run(SimDuration::ZERO, measure);
    let checker = sim.checker().expect("history checking enabled");
    let acked = checker.writes_acked();
    let checked = checker.reads_checked();
    let imbalance = sim.capacity_imbalance();
    let filled_osds = sim
        .osd_fill_bytes()
        .iter()
        .filter(|&&(_, bytes)| bytes > 0)
        .count();
    let flaps_damped = sim.flaps_damped();
    let stuck = sim.stuck_pgs();
    let divergence = sim.replica_divergence();
    let digests = sim.replica_digest_inconsistency();
    ChurnOutcome {
        writes: report.writes_done,
        reads: report.reads_done,
        errors: report.client_errors,
        pushes: report.recovery_pushes,
        backfill_bytes: report.backfill_bytes,
        backfill_queued: report.backfill_queued,
        backfill_throttled_nanos: report.backfill_throttled_nanos,
        flaps_damped,
        acked,
        checked,
        stuck,
        divergence,
        digests,
        imbalance_bits: imbalance.to_bits(),
        filled_osds,
    }
}

/// Shared assertions: all ops resolved, nothing lost, cluster healed.
fn assert_churn_converged(
    o: &ChurnOutcome,
    conns: u64,
    writes_per_conn: u64,
    reads_per_conn: u64,
) -> Result<(), TestCaseError> {
    let total_ops = conns * (writes_per_conn + reads_per_conn);
    prop_assert!(
        o.writes + o.reads + o.errors >= total_ops,
        "all ops resolved: {}+{}+{} of {total_ops}",
        o.writes,
        o.reads,
        o.errors
    );
    prop_assert!(
        o.writes >= conns * writes_per_conn / 2,
        "most writes completed: {}",
        o.writes
    );
    prop_assert!(o.acked >= o.writes, "every counted write was vetted");
    prop_assert!(o.checked >= o.reads, "every read was vetted");
    prop_assert!(
        o.stuck.is_empty(),
        "every PG is Active after quiesce: {:?}",
        o.stuck
    );
    prop_assert!(
        o.divergence.is_empty(),
        "replicas byte-identical after rebalance: {:?}",
        o.divergence
    );
    prop_assert!(
        o.digests.is_empty(),
        "replica checksum metadata consistent after rebalance: {:?}",
        o.digests
    );
    Ok(())
}

// Grow topology: 16 nodes x 4 OSDs pre-provisioned, 4 in service at start.
const GROW_NODES: u32 = 16;
const GROW_OSDS_PER_NODE: u32 = 4;
const GROW_OSDS: u32 = GROW_NODES * GROW_OSDS_PER_NODE;
const GROW_PGS: u32 = 32;
const GROW_CONNS: u64 = 3;
const GROW_WRITES_PER_CONN: u64 = 512;
const GROW_READS_PER_CONN: u64 = 64;
/// Declared capacity-imbalance tolerance for the grown cluster. With 16
/// data-bearing groups x 2 replicas over 64 OSDs the placement is sparse,
/// so (max-mean)/mean is inherently a few multiples of the mean; the
/// no-rebalance catastrophe (everything still on the 4 seed OSDs) sits at
/// ~15 and must stay well outside the bound.
const GROW_IMBALANCE_TOLERANCE: f64 = 9.0;

/// First OSD on each of the first four nodes starts in service.
fn grow_seed_osds() -> [u32; 4] {
    [
        0,
        GROW_OSDS_PER_NODE,
        2 * GROW_OSDS_PER_NODE,
        3 * GROW_OSDS_PER_NODE,
    ]
}

/// Second wave: first OSD on each of the next four nodes (4 -> 8).
fn grow_second_wave() -> [u32; 4] {
    [
        4 * GROW_OSDS_PER_NODE,
        5 * GROW_OSDS_PER_NODE,
        6 * GROW_OSDS_PER_NODE,
        7 * GROW_OSDS_PER_NODE,
    ]
}

fn grow_oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % GROW_PGS as u64) as u32), i)
}

struct GrowConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for GrowConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < GROW_WRITES_PER_CONN {
            let k = i % 8;
            let block = (i / 8) % 16;
            Some(WorkItem::Write {
                oid: grow_oid(self.conn, k),
                offset: block * 4096,
                len: 4096,
                fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
            })
        } else if i < GROW_WRITES_PER_CONN + GROW_READS_PER_CONN {
            let j = i - GROW_WRITES_PER_CONN;
            Some(WorkItem::Read {
                oid: grow_oid(self.conn, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

/// Config for the grow-4->8->64-under-load scenario: the full 64-OSD
/// topology is pre-provisioned with every spare at weight zero, then two
/// churn waves weave them in while the client workload runs. The backfill
/// throttle is tightened so the 56-OSD wave visibly queues.
fn grow_config(seed: u64, drop_p: f64) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = GROW_NODES;
    cfg.osds_per_node = GROW_OSDS_PER_NODE;
    cfg.cores_per_node = 6;
    cfg.priority_threads = 1;
    cfg.non_priority_threads = 2;
    cfg.pg_count = GROW_PGS;
    cfg.queue_depth = 4;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 32 << 20,
        nvm_bytes: 4 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        // tiny() models the paper's store (no data checksums); keep the
        // read-path CRCs on so the digest-consistency invariant has teeth.
        cos: CosOptions {
            checksums: true,
            ..CosOptions::tiny()
        },
        max_backfill_inflight: 2,
        backfill_bytes_per_tick: 1 << 20,
        ..OsdConfig::default()
    };
    cfg.faults = FaultPlan::none().with_link_fault(converging_link_fault(drop_p));
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;

    let seed_osds = grow_seed_osds();
    cfg.initially_out = (0..GROW_OSDS)
        .filter(|id| !seed_osds.contains(id))
        .collect();
    let second = grow_second_wave();
    let mut churn: Vec<ChurnOp> = second
        .iter()
        .map(|&osd| ChurnOp {
            at: ms(8),
            osd,
            weight: DEFAULT_OSD_WEIGHT,
        })
        .collect();
    let rest = (0..GROW_OSDS).filter(|id| !seed_osds.contains(id) && !second.contains(id));
    churn.extend(rest.enumerate().map(|(i, osd)| ChurnOp {
        at: ms(20) + SimDuration::nanos(100_000) * i as u64,
        osd,
        weight: DEFAULT_OSD_WEIGHT,
    }));
    cfg.churn = churn;
    cfg
}

fn run_grow(seed: u64, drop_p: f64) -> ChurnOutcome {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..GROW_CONNS)
        .map(|c| Box::new(GrowConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let objects: Vec<(ObjectId, u64)> = (0..GROW_CONNS)
        .flat_map(|c| (0..8).map(move |k| (grow_oid(c, k), 256 << 10)))
        .collect();
    run_churn(
        grow_config(seed, drop_p),
        wl,
        &objects,
        SimDuration::millis(600),
    )
}

/// Drain scenario on the small 3-OSD topology: one member is weighted to
/// zero mid-load, its groups re-home to the survivors, and it must end the
/// run out of every acting set with the survivors byte-identical.
fn drain_config(seed: u64, drop_p: f64, drained: u32, at_ms: u64) -> ClusterSimConfig {
    let mut cfg = base_config(
        seed,
        FaultPlan::none().with_link_fault(converging_link_fault(drop_p)),
    );
    cfg.churn = vec![ChurnOp {
        at: ms(at_ms),
        osd: drained,
        weight: 0,
    }];
    cfg
}

fn run_small_churn(cfg: ClusterSimConfig) -> ChurnOutcome {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let objects: Vec<(ObjectId, u64)> = (0..CONNS)
        .flat_map(|c| (0..8).map(move |k| (oid(c, k), 1 << 20)))
        .collect();
    run_churn(cfg, wl, &objects, SimDuration::secs(5))
}

/// Flapping storm: one OSD bounces down/up for `cycles` cycles while the
/// workload runs. Downtime exceeds the heartbeat grace so every cycle is a
/// real map-churn event the monitor must dampen.
fn flap_config(seed: u64, drop_p: f64, flapper: usize, cycles: usize) -> ClusterSimConfig {
    base_config(
        seed,
        FaultPlan::none()
            .with_link_fault(converging_link_fault(drop_p))
            .with_flapping(
                flapper,
                ms(3),
                cycles,
                SimDuration::millis(10),
                SimDuration::millis(7),
            ),
    )
}

/// Rolling upgrade: every node restarted in turn, one at a time, with the
/// monitor's dampening active (a clean walk must never trip it).
fn rolling_upgrade_config(seed: u64, drop_p: f64, downtime_ms: u64) -> ClusterSimConfig {
    base_config(
        seed,
        FaultPlan::none()
            .with_link_fault(converging_link_fault(drop_p))
            .with_rolling_upgrade(
                0..NODES,
                ms(3),
                SimDuration::millis(downtime_ms),
                SimDuration::millis(downtime_ms + 15),
            ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(3)))]

    /// Grow 4 -> 8 -> 64 OSDs under sustained client load: no acked write
    /// is lost, every PG is Active after the dust settles, replicas are
    /// byte-identical, data actually spread onto the new OSDs, capacity
    /// imbalance stays within the declared tolerance, the tightened
    /// backfill throttle visibly queued work, and the whole elastic history
    /// is seed-reproducible.
    #[test]
    fn churn_grow_4_to_8_to_64_under_load_converges(
        seed in any::<u64>(),
        drop_p in 0.002f64..0.015,
    ) {
        let first = run_grow(seed, drop_p);
        assert_churn_converged(&first, GROW_CONNS, GROW_WRITES_PER_CONN, GROW_READS_PER_CONN)?;
        prop_assert!(
            first.pushes >= 1 && first.backfill_bytes > 0,
            "expansion actually moved data: {} pushes, {} bytes",
            first.pushes,
            first.backfill_bytes
        );
        prop_assert!(
            first.backfill_queued >= 1,
            "the 56-OSD wave must queue against the throttle: {} queued",
            first.backfill_queued
        );
        prop_assert!(
            first.filled_osds >= 12,
            "data spread onto the new OSDs: {} hold bytes",
            first.filled_osds
        );
        let imbalance = f64::from_bits(first.imbalance_bits);
        prop_assert!(
            imbalance.is_finite() && imbalance <= GROW_IMBALANCE_TOLERANCE,
            "capacity imbalance within tolerance: {imbalance:.2} <= {GROW_IMBALANCE_TOLERANCE}"
        );
        let second = run_grow(seed, drop_p);
        prop_assert_eq!(first, second, "same seed, same elastic history");
    }

    /// Drain one OSD (weight -> 0) mid-load: its groups re-home, nothing
    /// acked is lost, and the run is seed-reproducible.
    #[test]
    fn churn_drain_osd_under_load_converges(
        seed in any::<u64>(),
        drop_p in 0.002f64..0.02,
        drained in 0u32..3,
        at_ms in 2u64..12,
    ) {
        let first = run_small_churn(drain_config(seed, drop_p, drained, at_ms));
        assert_churn_converged(&first, CONNS, WRITES_PER_CONN, READS_PER_CONN)?;
        prop_assert!(
            first.pushes >= 1,
            "drain re-homed data via pushes: {}",
            first.pushes
        );
        let second = run_small_churn(drain_config(seed, drop_p, drained, at_ms));
        prop_assert_eq!(first, second, "same seed, same drain history");
    }

    /// Flapping storm: >= 5 down/up cycles on one OSD under load. The
    /// monitor's dampening must trip (observable in `flaps_damped`), the
    /// cluster must still converge to all-Active with byte-identical
    /// replicas, and the storm must replay deterministically.
    #[test]
    fn churn_flapping_osd_storm_converges_with_dampening(
        seed in any::<u64>(),
        drop_p in 0.002f64..0.02,
        flapper in 0usize..3,
        cycles in 5usize..8,
    ) {
        let first = run_small_churn(flap_config(seed, drop_p, flapper, cycles));
        assert_churn_converged(&first, CONNS, WRITES_PER_CONN, READS_PER_CONN)?;
        prop_assert!(
            first.flaps_damped >= 1,
            "dampening tripped on the storm: {} refused rejoins",
            first.flaps_damped
        );
        let second = run_small_churn(flap_config(seed, drop_p, flapper, cycles));
        prop_assert_eq!(first, second, "same seed, same storm history");
    }

    /// Rolling upgrade: every node restarted in sequence, one down at a
    /// time. A clean maintenance walk must never trip flap dampening, and
    /// the cluster heals after each step.
    #[test]
    fn churn_rolling_upgrade_converges_without_dampening(
        seed in any::<u64>(),
        drop_p in 0.002f64..0.02,
        downtime_ms in 6u64..10,
    ) {
        let first = run_small_churn(rolling_upgrade_config(seed, drop_p, downtime_ms));
        assert_churn_converged(&first, CONNS, WRITES_PER_CONN, READS_PER_CONN)?;
        prop_assert!(
            first.flaps_damped == 0,
            "a clean rolling upgrade never trips dampening: {}",
            first.flaps_damped
        );
        let second = run_small_churn(rolling_upgrade_config(seed, drop_p, downtime_ms));
        prop_assert_eq!(first, second, "same seed, same upgrade history");
    }
}
