//! End-to-end strong-consistency tests over live clusters.
//!
//! The block service promises §II-A's guarantee: a read always returns the
//! most recent acknowledged write. These tests drive randomized workloads
//! against a real-thread cluster for every pipeline variant and cross-check
//! each read against a byte-level model.

use rablock::{BlockImage, ClusterBuilder, ImageSpec, ModelChecker, PipelineMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const IMAGE_BYTES: u64 = 8 << 20;

fn cluster(mode: PipelineMode) -> rablock::LiveCluster {
    ClusterBuilder::new(mode)
        .nodes(2)
        .osds_per_node(2)
        .pg_count(16)
        .device_bytes(96 << 20)
        .start_live()
}

fn random_ops(mode: PipelineMode, seed: u64, ops: usize) {
    let c = cluster(mode);
    // Provision the image (pre-creating every object), like a real RBD
    // image: unwritten ranges then read as zeroes on every backend.
    let image =
        BlockImage::create(&c, ImageSpec::with_object_size(1, IMAGE_BYTES, 16, 1 << 20)).unwrap();
    let mut model = ModelChecker::new(IMAGE_BYTES);
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..ops {
        let len = *[1u64, 100, 512, 4096, 10_000, 70_000]
            .get(rng.gen_range(0..6usize))
            .unwrap();
        let offset = rng.gen_range(0..IMAGE_BYTES - len);
        if rng.gen_bool(0.6) {
            let fill = (i % 251) as u8;
            model
                .write(&image, offset, &vec![fill; len as usize])
                .unwrap();
        } else {
            model.read_check(&image, offset, len).unwrap();
        }
    }
    model.full_check(&image).unwrap();
    c.shutdown();
}

#[test]
fn consistency_original() {
    random_ops(PipelineMode::Original, 11, 300);
}

#[test]
fn consistency_cos() {
    random_ops(PipelineMode::Cos, 22, 300);
}

#[test]
fn consistency_ptc() {
    random_ops(PipelineMode::Ptc, 33, 300);
}

#[test]
fn consistency_dop() {
    random_ops(PipelineMode::Dop, 44, 500);
}

#[test]
fn concurrent_images_are_isolated() {
    let c = cluster(PipelineMode::Dop);
    let mut joins = Vec::new();
    for w in 0..4u8 {
        let image = BlockImage::create(
            &c,
            ImageSpec::with_object_size(w + 1, IMAGE_BYTES, 16, 1 << 20),
        )
        .unwrap();
        joins.push(std::thread::spawn(move || {
            let mut model = ModelChecker::new(IMAGE_BYTES);
            let mut rng = SmallRng::seed_from_u64(w as u64);
            for i in 0..150 {
                let len = rng.gen_range(1..20_000u64);
                let offset = rng.gen_range(0..IMAGE_BYTES - len);
                if i % 3 == 0 {
                    model.read_check(&image, offset, len).unwrap();
                } else {
                    model
                        .write(&image, offset, &vec![w.wrapping_mul(37); len as usize])
                        .unwrap();
                }
            }
            model.full_check(&image).unwrap();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    c.shutdown();
}

#[test]
fn write_heavy_flush_churn_stays_consistent() {
    // Hammer a tiny range so the operation log flushes constantly and
    // reads race flushes (the FlushThenStore path).
    let c = ClusterBuilder::new(PipelineMode::Dop)
        .nodes(2)
        .osds_per_node(1)
        .pg_count(8)
        .flush_threshold(4)
        .device_bytes(64 << 20)
        .start_live();
    let image =
        BlockImage::create(&c, ImageSpec::with_object_size(1, 1 << 20, 8, 1 << 20)).unwrap();
    let mut model = ModelChecker::new(1 << 20);
    let mut rng = SmallRng::seed_from_u64(99);
    for i in 0..800u64 {
        let block = rng.gen_range(0..16u64);
        if i % 4 == 3 {
            model.read_check(&image, block * 4096, 4096).unwrap();
        } else {
            model
                .write(&image, block * 4096, &vec![(i % 251) as u8; 4096])
                .unwrap();
        }
    }
    model.full_check(&image).unwrap();
    c.shutdown();
}
