//! Snapshot / rollback (the paper's §IV-C-7 versioning extension).

use rablock::{BlockImage, ClusterBuilder, ImageSpec, PipelineMode};

#[test]
fn snapshot_then_rollback_restores_exact_contents() {
    let cluster = ClusterBuilder::new(PipelineMode::Dop)
        .nodes(2)
        .osds_per_node(1)
        .pg_count(16)
        .device_bytes(96 << 20)
        .start_live();
    let size = 4u64 << 20;
    let image =
        BlockImage::create(&cluster, ImageSpec::with_object_size(1, size, 16, 1 << 20)).unwrap();

    // Baseline contents.
    for block in 0..16u64 {
        image
            .write(block * 4096, &vec![(block + 1) as u8; 4096])
            .unwrap();
    }
    // Snapshot "v1" under its own object namespace (image id 2).
    let snap = image
        .snapshot_to(&cluster, ImageSpec::with_object_size(2, size, 16, 1 << 20))
        .unwrap();

    // Diverge the live image.
    for block in 0..16u64 {
        image.write(block * 4096, &vec![0xAA; 4096]).unwrap();
    }
    assert_eq!(image.read(0, 4096).unwrap(), vec![0xAA; 4096]);
    // The snapshot is unaffected.
    assert_eq!(snap.read(0, 4096).unwrap(), vec![1u8; 4096]);

    // Roll back.
    image.rollback_from(&snap).unwrap();
    for block in 0..16u64 {
        assert_eq!(
            image.read(block * 4096, 4096).unwrap(),
            vec![(block + 1) as u8; 4096],
            "block {block} restored"
        );
    }
    cluster.shutdown();
}

#[test]
#[should_panic(expected = "must match")]
fn mismatched_snapshot_sizes_rejected() {
    let cluster = ClusterBuilder::new(PipelineMode::Dop)
        .nodes(2)
        .osds_per_node(1)
        .pg_count(8)
        .device_bytes(64 << 20)
        .start_live();
    let image = BlockImage::create(
        &cluster,
        ImageSpec::with_object_size(1, 2 << 20, 8, 1 << 20),
    )
    .unwrap();
    let _ = image.snapshot_to(
        &cluster,
        ImageSpec::with_object_size(2, 4 << 20, 8, 1 << 20),
    );
}
