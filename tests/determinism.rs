//! Workspace-level determinism guarantees.
//!
//! Every benchmark harness must be reproducible bit-for-bit: same seed →
//! same IOPS, same context-switch count, same byte counters. These tests
//! pin that property across pipeline modes and config dimensions.

use rablock::sim::{ClusterSim, ClusterSimConfig, ConnWorkload, SimDuration, SimRng, WorkItem};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

fn config(mode: PipelineMode, seed: u64) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(mode);
    cfg.nodes = 2;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.pg_count = 16;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    cfg
}

fn workloads(conns: usize) -> Vec<Box<dyn ConnWorkload>> {
    (0..conns)
        .map(|c| {
            let mut x = 0xABCDu64.wrapping_add(c as u64);
            Box::new(move |_rng: &mut SimRng| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let i = (x >> 8) % 16;
                Some(WorkItem::Write {
                    oid: ObjectId::new(GroupId((i % 16) as u32), i),
                    offset: ((x >> 40) % 128) * 4096,
                    len: 4096,
                    fill: (x % 251) as u8,
                })
            }) as Box<dyn ConnWorkload>
        })
        .collect()
}

fn fingerprint(mode: PipelineMode, seed: u64) -> (u64, u64, u64, u64) {
    let mut sim = ClusterSim::new(config(mode, seed), workloads(4));
    sim.prefill(
        &(0..16u64)
            .map(|i| (ObjectId::new(GroupId(i as u32 % 16), i), 1 << 20))
            .collect::<Vec<_>>(),
    );
    let r = sim.run(SimDuration::millis(10), SimDuration::millis(40));
    (
        r.writes_done,
        r.context_switches,
        r.nvm_bytes,
        r.device.bytes_written,
    )
}

#[test]
fn identical_seeds_give_identical_runs() {
    for mode in [PipelineMode::Original, PipelineMode::Dop, PipelineMode::Ptc] {
        assert_eq!(fingerprint(mode, 7), fingerprint(mode, 7), "mode {mode:?}");
    }
}

#[test]
fn different_seeds_still_complete_work() {
    let a = fingerprint(PipelineMode::Dop, 1);
    let b = fingerprint(PipelineMode::Dop, 2);
    assert!(
        a.0 > 100 && b.0 > 100,
        "both seeds make progress: {a:?} {b:?}"
    );
}

#[test]
fn repeated_triple_runs_are_stable() {
    let runs: Vec<_> = (0..3).map(|_| fingerprint(PipelineMode::Dop, 99)).collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}
