//! Workspace-level determinism guarantees.
//!
//! Every benchmark harness must be reproducible bit-for-bit: same seed →
//! same IOPS, same context-switch count, same byte counters. These tests
//! pin that property across pipeline modes and config dimensions.

use proptest::prelude::*;
use rablock::sim::{
    BitRotSchedule, ChurnOp, ClusterSim, ClusterSimConfig, ConnWorkload, CrashSchedule, FaultPlan,
    GrayWindow, LinkFault, Partition, RetryPolicy, RotMedia, SchedulerKind, SimDuration, SimReport,
    SimRng, SimTime, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_bench::{paper_cluster, randwrite_conns, Dataset};
use rablock_cluster::osd::OsdConfig;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

fn config(mode: PipelineMode, seed: u64) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(mode);
    cfg.nodes = 2;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.pg_count = 16;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    cfg
}

fn workloads(conns: usize) -> Vec<Box<dyn ConnWorkload>> {
    (0..conns)
        .map(|c| {
            let mut x = 0xABCDu64.wrapping_add(c as u64);
            Box::new(move |_rng: &mut SimRng| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let i = (x >> 8) % 16;
                Some(WorkItem::Write {
                    oid: ObjectId::new(GroupId((i % 16) as u32), i),
                    offset: ((x >> 40) % 128) * 4096,
                    len: 4096,
                    fill: (x % 251) as u8,
                })
            }) as Box<dyn ConnWorkload>
        })
        .collect()
}

fn fingerprint(mode: PipelineMode, seed: u64) -> (u64, u64, u64, u64) {
    let mut sim = ClusterSim::new(config(mode, seed), workloads(4));
    sim.prefill(
        &(0..16u64)
            .map(|i| (ObjectId::new(GroupId(i as u32 % 16), i), 1 << 20))
            .collect::<Vec<_>>(),
    );
    let r = sim.run(SimDuration::millis(10), SimDuration::millis(40));
    (
        r.writes_done,
        r.context_switches,
        r.nvm_bytes,
        r.device.bytes_written,
    )
}

#[test]
fn identical_seeds_give_identical_runs() {
    for mode in [PipelineMode::Original, PipelineMode::Dop, PipelineMode::Ptc] {
        assert_eq!(fingerprint(mode, 7), fingerprint(mode, 7), "mode {mode:?}");
    }
}

#[test]
fn different_seeds_still_complete_work() {
    let a = fingerprint(PipelineMode::Dop, 1);
    let b = fingerprint(PipelineMode::Dop, 2);
    assert!(
        a.0 > 100 && b.0 > 100,
        "both seeds make progress: {a:?} {b:?}"
    );
}

#[test]
fn repeated_triple_runs_are_stable() {
    let runs: Vec<_> = (0..3).map(|_| fingerprint(PipelineMode::Dop, 99)).collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

/// Every observable metric of a run, flattened to integers so equality is
/// byte-for-byte: raw counters, latency percentiles in nanoseconds, CPU
/// percentages as IEEE-754 bit patterns, store/device accounting, and (when
/// history checking is on) the checker's verdict counts.
/// Position of `queue_high_water` in [`full_fingerprint`]'s layout. It is
/// the one observable that measures the *scheduler* rather than the
/// simulation: how many events sit pending at once depends on when
/// cross-domain events merge into the destination queue, which is exactly
/// what the lookahead window batches. The lookahead-torture test masks
/// this index when comparing across window sizes (and only then — across
/// worker counts at a fixed window it must match like everything else).
const QUEUE_HIGH_WATER_IDX: usize = 10;

fn full_fingerprint(r: &SimReport, checker: Option<(u64, u64)>) -> Vec<u64> {
    let mut v = vec![
        r.duration.as_nanos(),
        r.writes_done,
        r.reads_done,
        r.write_iops.to_bits(),
        r.read_iops.to_bits(),
        r.context_switches,
        r.events_processed,
        r.nvm_bytes,
        r.nvm_full_stalls,
        r.client_errors,
        r.queue_high_water,
        r.recovery_pushes,
        r.backfill_bytes,
        r.degraded_objects,
        r.backfill_queued,
        r.backfill_throttled_nanos,
        r.flaps_damped,
        r.scrubs_completed,
        r.scrub_errors_found,
        r.scrub_errors_repaired,
        r.scrub_bytes,
        r.scrub_throttled_nanos,
        r.read_checksum_errors,
    ];
    // Attribution is deliberately excluded: it only exists when tracing is
    // armed, and the fingerprint must compare equal tracing off vs on.
    let wf = r.write_lat.fields();
    let rf = r.read_lat.fields();
    v.extend(wf.iter().chain(rf.iter()).map(|d| d.as_nanos()));
    v.extend(r.node_cpu_pct.iter().map(|p| p.to_bits()));
    v.extend(r.tag_cpu_pct.values().map(|p| p.to_bits()));
    v.extend(r.class_cpu_pct.values().map(|p| p.to_bits()));
    v.extend([
        r.store.user_bytes,
        r.store.wal_bytes,
        r.store.flush_bytes,
        r.store.compaction_bytes,
        r.store.data_bytes,
        r.store.metadata_bytes,
        r.store.superblock_bytes,
        r.store.read_bytes,
        r.store.transactions,
    ]);
    v.extend([
        r.device.reads,
        r.device.writes,
        r.device.flushes,
        r.device.bytes_read,
        r.device.bytes_written,
        r.device.total_latency_ns,
    ]);
    if let Some((acked, checked)) = checker {
        v.extend([acked, checked]);
    }
    v
}

/// One fig7-style run (the paper-cluster 4 KiB random-write scenario the
/// wall-clock harness times), with its full metric fingerprint.
fn fig7_fingerprint(sched: SchedulerKind) -> Vec<u64> {
    fig7_fingerprint_traced(sched, false)
}

fn fig7_fingerprint_traced(sched: SchedulerKind, trace: bool) -> Vec<u64> {
    fig7_fingerprint_sharded(sched, trace, 1)
}

fn fig7_fingerprint_sharded(sched: SchedulerKind, trace: bool, shards: usize) -> Vec<u64> {
    const CONNS: usize = 16;
    let dataset = Dataset::default_for(CONNS);
    let mut cfg = paper_cluster(PipelineMode::Dop);
    cfg.scheduler = sched;
    cfg.trace = trace;
    cfg.shards = shards;
    if trace {
        cfg.telemetry_window = Some(SimDuration::millis(2));
    }
    let mut sim = ClusterSim::new(cfg, randwrite_conns(dataset, CONNS));
    sim.prefill(&dataset.all_objects());
    let r = sim.run(SimDuration::ZERO, SimDuration::millis(20));
    assert!(r.writes_done > 0, "fig7 run must make progress");
    full_fingerprint(&r, None)
}

#[test]
fn fig7_double_run_is_byte_identical() {
    let a = fig7_fingerprint(SchedulerKind::default());
    let b = fig7_fingerprint(SchedulerKind::default());
    assert!(a.len() > 20, "fingerprint covers the full report");
    assert_eq!(a, b, "fig7: same seed must replay identical metrics");
}

const CHAOS_PGS: u32 = 8;
const CHAOS_CONNS: u64 = 4;

fn chaos_oid(conn: u64, k: u64) -> ObjectId {
    let i = conn * 100 + k;
    ObjectId::new(GroupId((i % CHAOS_PGS as u64) as u32), i)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

struct ChaosConn {
    conn: u64,
    cursor: u64,
}

impl ConnWorkload for ChaosConn {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < 400 {
            let k = i % 8;
            let block = (i / 8) % 16;
            Some(WorkItem::Write {
                oid: chaos_oid(self.conn, k),
                offset: block * 4096,
                len: 4096,
                fill: ((self.conn * 97 + k * 31 + block) % 251) as u8,
            })
        } else if i < 500 {
            let j = i - 400;
            Some(WorkItem::Read {
                oid: chaos_oid(self.conn, j % 8),
                offset: (j / 8) * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

/// The wall-clock harness's chaos seed: drops, duplicates, reordering, a
/// partition, a gray device, and a crash/restart — with retries, heartbeat
/// failure detection, and the history checker armed.
fn chaos_config() -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = 3;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = CHAOS_PGS;
    cfg.queue_depth = 4;
    cfg.seed = 0xC0FFEE;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    cfg.faults = FaultPlan::none()
        .with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(10_000),
            drop_p: 0.01,
            dup_p: 0.005,
            reorder_p: 0.05,
            reorder_max: SimDuration::nanos(200_000),
            spike_p: 0.02,
            spike: SimDuration::nanos(500_000),
        })
        .with_partition(Partition {
            a: 0,
            b: 1,
            from: ms(8),
            until: ms(18),
        })
        .with_gray_window(GrayWindow {
            device: 1,
            from: ms(2),
            until: ms(25),
            multiplier: 8.0,
        })
        .with_crash(CrashSchedule {
            process: 0,
            at: ms(6),
            restart_at: Some(ms(40)),
            torn_tail: true,
        });
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    cfg
}

fn chaos_fingerprint_with(seed: u64, sched: SchedulerKind) -> Vec<u64> {
    chaos_fingerprint_traced(seed, sched, false)
}

fn chaos_fingerprint_traced(seed: u64, sched: SchedulerKind, trace: bool) -> Vec<u64> {
    chaos_fingerprint_opts(seed, sched, trace, 1, None, 100)
}

/// The chaos fingerprint with the space-parallel knobs exposed: worker
/// shard count, an optional lookahead override (the torture tests force
/// 1 ns to maximize synchronization rounds), and the measure window.
fn chaos_fingerprint_opts(
    seed: u64,
    sched: SchedulerKind,
    trace: bool,
    shards: usize,
    lookahead: Option<SimDuration>,
    measure_ms: u64,
) -> Vec<u64> {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CHAOS_CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut cfg = chaos_config();
    cfg.seed = seed;
    cfg.scheduler = sched;
    cfg.trace = trace;
    cfg.shards = shards;
    cfg.lookahead = lookahead;
    if trace {
        cfg.telemetry_window = Some(SimDuration::millis(5));
    }
    let mut sim = ClusterSim::new(cfg, wl);
    let objects: Vec<(ObjectId, u64)> = (0..CHAOS_CONNS)
        .flat_map(|c| (0..8).map(move |k| (chaos_oid(c, k), 1 << 20)))
        .collect();
    sim.prefill(&objects);
    let r = sim.run(SimDuration::ZERO, SimDuration::millis(measure_ms));
    assert!(r.writes_done > 0, "chaos run must make progress");
    let checker = sim.checker().expect("history checking enabled");
    full_fingerprint(&r, Some((checker.writes_acked(), checker.reads_checked())))
}

#[test]
fn chaos_seed_double_run_is_byte_identical() {
    let a = chaos_fingerprint_with(0xC0FFEE, SchedulerKind::default());
    let b = chaos_fingerprint_with(0xC0FFEE, SchedulerKind::default());
    assert!(a.len() > 20, "fingerprint covers the full report");
    assert_eq!(
        a, b,
        "chaos: faults, retries, and checker verdicts must replay identically"
    );
}

/// The timing wheel and the binary-heap oracle must produce the same event
/// order, and therefore bit-identical metric fingerprints, on the clean
/// fig7 scenario.
#[test]
fn wheel_matches_heap_fingerprint_fig7() {
    let wheel = fig7_fingerprint(SchedulerKind::Wheel);
    let heap = fig7_fingerprint(SchedulerKind::Heap);
    assert_eq!(
        wheel, heap,
        "fig7: scheduler choice must be invisible to every metric"
    );
}

/// Same, on the chaos scenario: faults, heartbeat failover, client retries,
/// a crash/restart with log-based recovery, and the history checker — the
/// paths most sensitive to event ordering.
/// Tracing must be purely passive: arming per-op spans, latency
/// attribution, the slow-op ring, and the windowed telemetry sampler must
/// not move a single event, so the full metric fingerprint is byte-identical
/// tracing off vs on — under both schedulers, on both the clean fig7
/// scenario and the fault-heavy chaos scenario.
#[test]
fn tracing_is_invisible_to_fingerprint_fig7_wheel() {
    let off = fig7_fingerprint_traced(SchedulerKind::Wheel, false);
    let on = fig7_fingerprint_traced(SchedulerKind::Wheel, true);
    assert_eq!(off, on, "fig7/wheel: tracing must not perturb the run");
}

#[test]
fn tracing_is_invisible_to_fingerprint_fig7_heap() {
    let off = fig7_fingerprint_traced(SchedulerKind::Heap, false);
    let on = fig7_fingerprint_traced(SchedulerKind::Heap, true);
    assert_eq!(off, on, "fig7/heap: tracing must not perturb the run");
}

#[test]
fn tracing_is_invisible_to_fingerprint_chaos_wheel() {
    let off = chaos_fingerprint_traced(0xC0FFEE, SchedulerKind::Wheel, false);
    let on = chaos_fingerprint_traced(0xC0FFEE, SchedulerKind::Wheel, true);
    assert_eq!(off, on, "chaos/wheel: tracing must not perturb the run");
}

#[test]
fn tracing_is_invisible_to_fingerprint_chaos_heap() {
    let off = chaos_fingerprint_traced(0xC0FFEE, SchedulerKind::Heap, false);
    let on = chaos_fingerprint_traced(0xC0FFEE, SchedulerKind::Heap, true);
    assert_eq!(off, on, "chaos/heap: tracing must not perturb the run");
}

#[test]
fn wheel_matches_heap_fingerprint_chaos() {
    let wheel = chaos_fingerprint_with(0xC0FFEE, SchedulerKind::Wheel);
    let heap = chaos_fingerprint_with(0xC0FFEE, SchedulerKind::Heap);
    assert_eq!(
        wheel, heap,
        "chaos: scheduler choice must be invisible to every metric"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the wheel-vs-heap differential: any seed drives the
    /// chaos scenario (fault injection + crash recovery + history checking)
    /// to the same full fingerprint under both schedulers.
    #[test]
    fn wheel_matches_heap_fingerprint(seed in 1u64..1_000_000) {
        let wheel = chaos_fingerprint_with(seed, SchedulerKind::Wheel);
        let heap = chaos_fingerprint_with(seed, SchedulerKind::Heap);
        prop_assert_eq!(wheel, heap);
    }
}

/// Elastic-operations scenario: a 4-node x 4-OSD topology starts with only
/// the first OSD of each node in service, grows to 16 via two weight-churn
/// waves, while one OSD flaps through 6 down/up cycles (tripping the
/// monitor's dampening) and the backfill throttle is tightened enough to
/// queue. Exercises every counter the elastic-operations work added.
fn churn_config(seed: u64) -> ClusterSimConfig {
    const W: u32 = rablock_cluster::placement::DEFAULT_OSD_WEIGHT;
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = 4;
    cfg.osds_per_node = 4;
    cfg.cores_per_node = 6;
    cfg.priority_threads = 1;
    cfg.non_priority_threads = 2;
    cfg.pg_count = CHAOS_PGS;
    cfg.queue_depth = 4;
    cfg.seed = seed;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 32 << 20,
        nvm_bytes: 4 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        max_backfill_inflight: 2,
        backfill_bytes_per_tick: 1 << 20,
        ..OsdConfig::default()
    };
    cfg.faults = FaultPlan::none()
        .with_link_fault(LinkFault {
            link: None,
            from: SimTime::ZERO,
            until: ms(10_000),
            drop_p: 0.005,
            dup_p: 0.002,
            reorder_p: 0.05,
            reorder_max: SimDuration::nanos(200_000),
            spike_p: 0.02,
            spike: SimDuration::nanos(500_000),
        })
        .with_flapping(0, ms(3), 6, SimDuration::millis(10), SimDuration::millis(7));
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    // Seed members: first OSD of each node (ids 0, 4, 8, 12).
    let seed_osds = [0u32, 4, 8, 12];
    cfg.initially_out = (0..16u32).filter(|id| !seed_osds.contains(id)).collect();
    let mut churn: Vec<ChurnOp> = [1u32, 5, 9, 13]
        .iter()
        .map(|&osd| ChurnOp {
            at: ms(8),
            osd,
            weight: W,
        })
        .collect();
    churn.extend(
        (0..16u32)
            .filter(|id| id % 4 >= 2)
            .enumerate()
            .map(|(i, osd)| ChurnOp {
                at: ms(20) + SimDuration::nanos(100_000) * i as u64,
                osd,
                weight: W,
            }),
    );
    cfg.churn = churn;
    cfg
}

fn churn_fingerprint_with(seed: u64, sched: SchedulerKind) -> Vec<u64> {
    churn_fingerprint_sharded(seed, sched, 1)
}

fn churn_fingerprint_sharded(seed: u64, sched: SchedulerKind, shards: usize) -> Vec<u64> {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CHAOS_CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut cfg = churn_config(seed);
    cfg.scheduler = sched;
    cfg.shards = shards;
    let mut sim = ClusterSim::new(cfg, wl);
    let objects: Vec<(ObjectId, u64)> = (0..CHAOS_CONNS)
        .flat_map(|c| (0..8).map(move |k| (chaos_oid(c, k), 256 << 10)))
        .collect();
    sim.prefill(&objects);
    let r = sim.run(SimDuration::ZERO, SimDuration::millis(100));
    assert!(r.writes_done > 0, "churn run must make progress");
    let checker = sim.checker().expect("history checking enabled");
    let mut fp = full_fingerprint(&r, Some((checker.writes_acked(), checker.reads_checked())));
    fp.push(sim.capacity_imbalance().to_bits());
    fp
}

#[test]
fn churn_seed_double_run_is_byte_identical() {
    let a = churn_fingerprint_with(0xE1A5, SchedulerKind::default());
    let b = churn_fingerprint_with(0xE1A5, SchedulerKind::default());
    assert!(a.len() > 20, "fingerprint covers the full report");
    assert_eq!(
        a, b,
        "churn: weight churn, flap dampening, and throttle accounting must replay identically"
    );
}

/// Wheel vs heap on the elastic-operations scenario: map churn, joiner
/// backfill, throttle windows, and flap dampening are the newest paths
/// sensitive to event ordering.
#[test]
fn wheel_matches_heap_fingerprint_churn() {
    let wheel = churn_fingerprint_with(0xE1A5, SchedulerKind::Wheel);
    let heap = churn_fingerprint_with(0xE1A5, SchedulerKind::Heap);
    assert_eq!(
        wheel, heap,
        "churn: scheduler choice must be invisible to every metric"
    );
}

/// Integrity scenario for the shard-invariance suite: bit rot strikes one
/// OSD mid-run with background deep scrub armed, so the fingerprint covers
/// the scrub/repair counters on top of the usual metric set.
fn scrub_config(seed: u64) -> ClusterSimConfig {
    let mut cfg = chaos_config();
    cfg.seed = seed;
    cfg.faults = FaultPlan::none().with_bit_rot(BitRotSchedule {
        process: 1,
        at: ms(6),
        object_lo: 0,
        object_hi: 1 << 16,
        flips: 32,
        media: RotMedia::CosData,
    });
    cfg.osd.cos.checksums = true;
    cfg.scrub_interval = Some(SimDuration::millis(10));
    cfg.scrub_deep_every = 1;
    cfg
}

fn scrub_fingerprint_sharded(seed: u64, shards: usize) -> Vec<u64> {
    let wl: Vec<Box<dyn ConnWorkload>> = (0..CHAOS_CONNS)
        .map(|c| Box::new(ChaosConn { conn: c, cursor: 0 }) as Box<dyn ConnWorkload>)
        .collect();
    let mut cfg = scrub_config(seed);
    cfg.shards = shards;
    let mut sim = ClusterSim::new(cfg, wl);
    let objects: Vec<(ObjectId, u64)> = (0..CHAOS_CONNS)
        .flat_map(|c| (0..8).map(move |k| (chaos_oid(c, k), 1 << 20)))
        .collect();
    sim.prefill(&objects);
    let r = sim.run(SimDuration::ZERO, SimDuration::millis(100));
    assert!(r.writes_done > 0, "scrub run must make progress");
    assert!(r.scrubs_completed > 0, "scrub must actually run");
    let checker = sim.checker().expect("history checking enabled");
    full_fingerprint(&r, Some((checker.writes_acked(), checker.reads_checked())))
}

// ---------------------------------------------------------------------------
// Space-parallel execution: `shards` picks how many worker threads run the
// engine's per-node domains. The partition and the cross-domain merge order
// are fixed at construction, so the full metric fingerprint must be
// byte-identical for every worker count, on every scenario family the
// workspace has: clean (fig7), fault-heavy (chaos), elastic (churn), and
// integrity (bit rot + scrub).
// ---------------------------------------------------------------------------

#[test]
fn shard_count_is_invisible_to_fingerprint_fig7() {
    let base = fig7_fingerprint_sharded(SchedulerKind::default(), false, 1);
    for shards in [2usize, 4] {
        let sharded = fig7_fingerprint_sharded(SchedulerKind::default(), false, shards);
        assert_eq!(
            base, sharded,
            "fig7: {shards} worker shards must replay the single-thread fingerprint"
        );
    }
}

#[test]
fn shard_count_is_invisible_to_fingerprint_chaos() {
    let base = chaos_fingerprint_opts(0xC0FFEE, SchedulerKind::default(), false, 1, None, 100);
    for shards in [2usize, 4] {
        let sharded =
            chaos_fingerprint_opts(0xC0FFEE, SchedulerKind::default(), false, shards, None, 100);
        assert_eq!(
            base, sharded,
            "chaos: {shards} worker shards must replay the single-thread fingerprint"
        );
    }
}

#[test]
fn shard_count_is_invisible_to_fingerprint_churn() {
    let base = churn_fingerprint_sharded(0xE1A5, SchedulerKind::default(), 1);
    for shards in [2usize, 4] {
        let sharded = churn_fingerprint_sharded(0xE1A5, SchedulerKind::default(), shards);
        assert_eq!(
            base, sharded,
            "churn: {shards} worker shards must replay the single-thread fingerprint"
        );
    }
}

#[test]
fn shard_count_is_invisible_to_fingerprint_scrub() {
    let base = scrub_fingerprint_sharded(0xD00D, 1);
    for shards in [2usize, 4] {
        let sharded = scrub_fingerprint_sharded(0xD00D, shards);
        assert_eq!(
            base, sharded,
            "scrub: {shards} worker shards must replay the single-thread fingerprint"
        );
    }
}

/// Tracing must stay passive under parallel execution too: the per-part
/// trace logs merge into one recorder in a total order, so arming them on
/// a 4-shard run must not move a single event.
#[test]
fn tracing_is_invisible_to_fingerprint_sharded_chaos() {
    let off = chaos_fingerprint_opts(0xC0FFEE, SchedulerKind::default(), false, 4, None, 100);
    let on = chaos_fingerprint_opts(0xC0FFEE, SchedulerKind::default(), true, 4, None, 100);
    assert_eq!(off, on, "chaos/4 shards: tracing must not perturb the run");
}

/// Torture variant: a 1 ns lookahead shrinks every LBTS window to a single
/// timestamp, maximizing synchronization rounds and cross-shard merge
/// traffic. Within that window size the worker count must still be fully
/// invisible; and against the default-window run, every *simulation*
/// metric must match — window size is pure batching, never semantics.
/// The sole exception is `queue_high_water` (see its index constant):
/// batching is precisely what a pending-population gauge measures, so it
/// is masked in the cross-window comparison only. (The driver clamps the
/// override to the network model's floor, so a config can only shrink
/// windows, not widen them.)
#[test]
fn one_nanosecond_lookahead_is_pure_batching() {
    let sched = SchedulerKind::default();
    let torture_la = Some(SimDuration::nanos(1));
    let base = chaos_fingerprint_opts(0xC0FFEE, sched, false, 1, torture_la, 20);
    for shards in [2usize, 4] {
        let tortured = chaos_fingerprint_opts(0xC0FFEE, sched, false, shards, torture_la, 20);
        assert_eq!(
            base, tortured,
            "chaos: 1 ns lookahead at {shards} shards must replay the 1-shard fingerprint"
        );
    }
    let mask = |mut v: Vec<u64>| {
        v[QUEUE_HIGH_WATER_IDX] = 0;
        v
    };
    let wide = chaos_fingerprint_opts(0xC0FFEE, sched, false, 1, None, 20);
    assert_ne!(
        base[QUEUE_HIGH_WATER_IDX], 0,
        "high-water gauge populated (masking a live field, not a dead one)"
    );
    assert_eq!(
        mask(wide),
        mask(base),
        "chaos: window size must change only merge batching, never a simulation metric"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property form of shard invariance: any seed drives the chaos
    /// scenario (fault injection + crash recovery + history checking) to
    /// the same full fingerprint at 1, 2, and 4 worker shards.
    #[test]
    fn sharded_chaos_matches_sequential(seed in 1u64..1_000_000) {
        let sched = SchedulerKind::default();
        let base = chaos_fingerprint_opts(seed, sched, false, 1, None, 40);
        for shards in [2usize, 4] {
            let sharded = chaos_fingerprint_opts(seed, sched, false, shards, None, 40);
            prop_assert_eq!(&base, &sharded, "shards {}", shards);
        }
    }
}
