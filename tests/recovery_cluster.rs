//! Cluster-level failure recovery inside the deterministic simulation.
//!
//! §IV-A-4 end to end: a replica crashes mid-workload; the monitor notices
//! purely through missed heartbeats and publishes a new map; survivors
//! flush-but-keep their logs; the replacement pulls the operation log;
//! clients retry timed-out ops and keep writing and reading throughout, and
//! no acknowledged data is lost (checked by the history checker).

use rablock::sim::{
    ClusterSim, ClusterSimConfig, ConnWorkload, RetryPolicy, SimDuration, SimRng, SimTime, WorkItem,
};
use rablock::{GroupId, ObjectId, PipelineMode};
use rablock_cluster::osd::OsdConfig;
use rablock_cluster::placement::OsdId;
use rablock_cos::CosOptions;
use rablock_lsm::LsmOptions;

const PGS: u32 = 8;

fn oid(i: u64) -> ObjectId {
    ObjectId::new(GroupId((i % PGS as u64) as u32), i)
}

fn config() -> ClusterSimConfig {
    // Three nodes so replication 2 survives one node failure.
    let mut cfg = ClusterSimConfig::defaults(PipelineMode::Dop);
    cfg.nodes = 3;
    cfg.osds_per_node = 1;
    cfg.cores_per_node = 8;
    cfg.priority_threads = 2;
    cfg.non_priority_threads = 3;
    cfg.pg_count = PGS;
    cfg.queue_depth = 4;
    cfg.osd = OsdConfig {
        mode: PipelineMode::Dop,
        device_bytes: 64 << 20,
        nvm_bytes: 8 << 20,
        ring_bytes: 256 << 10,
        flush_threshold: 8,
        lsm: LsmOptions::tiny(),
        cos: CosOptions::tiny(),
        ..OsdConfig::default()
    };
    // Failure detection is heartbeat-driven: `fail_osd` only kills the
    // process; the monitor learns of it from the missed-beacon window.
    cfg.heartbeat_period = Some(SimDuration::millis(1));
    cfg.heartbeat_grace = SimDuration::millis(5);
    // Ops stranded on the dead OSD time out and are retried against the
    // post-failover map instead of being abandoned.
    cfg.retry = Some(RetryPolicy {
        timeout_nanos: 10_000_000,
        backoff_base_nanos: 1_000_000,
        backoff_multiplier: 2.0,
        jitter_frac: 0.2,
        max_attempts: 8,
    });
    cfg.check_history = true;
    cfg
}

struct WriteThenVerify {
    phase_writes: u64,
    cursor: u64,
}

impl ConnWorkload for WriteThenVerify {
    fn next(&mut self, _rng: &mut SimRng) -> Option<WorkItem> {
        let i = self.cursor;
        self.cursor += 1;
        if i < self.phase_writes {
            // Deterministic fill per (object, block) so reads can verify.
            let obj = i % 16;
            let block = (i / 16) % 32;
            Some(WorkItem::Write {
                oid: oid(obj),
                offset: block * 4096,
                len: 4096,
                fill: ((obj * 31 + block) % 251) as u8,
            })
        } else if i < self.phase_writes + 64 {
            let j = i - self.phase_writes;
            let obj = j % 16;
            let block = (j / 16) % 4;
            Some(WorkItem::Read {
                oid: oid(obj),
                offset: block * 4096,
                len: 4096,
            })
        } else {
            None
        }
    }
}

#[test]
fn cluster_survives_replica_failure_mid_workload() {
    let cfg = config();
    let wl: Vec<Box<dyn ConnWorkload>> = vec![Box::new(WriteThenVerify {
        phase_writes: 512,
        cursor: 0,
    })];
    let mut sim = ClusterSim::new(cfg, wl);
    sim.prefill(&(0..16u64).map(|i| (oid(i), 1 << 20)).collect::<Vec<_>>());

    // Find an OSD that is a *replica* (not primary) for most groups so the
    // workload keeps its primaries after the failure... any OSD works with
    // rendezvous placement; kill osd.2.
    sim.fail_osd(SimTime::from_nanos(3_000_000), OsdId(2));

    let report = sim.run(SimDuration::ZERO, SimDuration::secs(5));
    // With timeout/retry, ops stranded on the dead OSD are retransmitted to
    // the post-failover primary, so (almost) every op completes.
    let total = report.writes_done + report.reads_done;
    assert!(
        total >= 512 + 64 - 16,
        "completed {total} ops across the failure"
    );
    assert!(
        report.reads_done >= 48,
        "verification reads completed: {}",
        report.reads_done
    );
    // The history checker vetted every read against acked writes.
    let checker = sim.checker().expect("history checking enabled");
    assert!(
        checker.reads_checked() >= 48,
        "reads checked: {}",
        checker.reads_checked()
    );
    // The map change was driven by missed heartbeats alone — `fail_osd`
    // never told the monitor anything.
    let info = sim
        .map()
        .osds
        .iter()
        .find(|o| o.id == OsdId(2))
        .expect("osd 2 registered");
    assert!(
        !info.up,
        "monitor marked the silent OSD down from missed heartbeats"
    );
}

#[test]
fn failure_triggers_log_pull_to_replacement() {
    let cfg = config();
    // Steady writes to one group, then fail its secondary.
    let g = GroupId(0);
    let mut sim = ClusterSim::new(
        cfg,
        vec![Box::new({
            let mut i = 0u64;
            move |_rng: &mut SimRng| {
                i += 1;
                if i > 200 {
                    return None;
                }
                Some(WorkItem::Write {
                    oid: ObjectId::new(g, 1),
                    offset: (i % 8) * 4096,
                    len: 4096,
                    fill: (i % 251) as u8,
                })
            }
        }) as Box<dyn ConnWorkload>],
    );
    sim.prefill(&[(ObjectId::new(g, 1), 1 << 20)]);
    let set = sim.map().acting_set(g);
    let secondary = set[1];
    let spare = (0..3)
        .map(OsdId)
        .find(|o| !set.contains(o))
        .expect("spare exists");

    sim.fail_osd(SimTime::from_nanos(2_000_000), secondary);
    sim.run(SimDuration::ZERO, SimDuration::secs(5));

    // After recovery the spare must be in the acting set and hold (or have
    // flushed) the group's log — either way, it participated in the pull.
    let new_set = sim.map().acting_set(g);
    assert!(
        new_set.contains(&spare),
        "spare joined the acting set: {new_set:?}"
    );
    assert!(
        !new_set.contains(&secondary),
        "dead OSD left the acting set"
    );
}
