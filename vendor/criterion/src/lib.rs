//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the benchmark targets
//! link against this minimal harness instead: same API shape
//! ([`Criterion`], [`criterion_group!`], [`criterion_main!`], `b.iter`),
//! with a fixed-iteration timer in place of criterion's statistical engine.
//! Good enough to run every bench target and print mean per-iteration
//! times; not a substitute for real criterion statistics.

use std::time::{Duration, Instant};

/// Times closures and prints mean per-iteration cost.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this harness does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            deadline: Instant::now() + self.measurement_time,
            budget: self.sample_size,
        };
        f(&mut b);
        let (mean, iters) = b.summary();
        println!("  {name}: {mean:?}/iter over {iters} iters");
        self
    }
}

/// A group of benchmarks sharing a [`Criterion`] configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(name, f);
        self
    }

    /// Ends the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Instant,
    budget: usize,
}

impl Bencher {
    /// Times `routine` for up to the configured sample count or deadline.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            if self.samples.len() >= self.budget || Instant::now() >= self.deadline {
                break;
            }
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
        if self.samples.is_empty() {
            // Guarantee at least one sample even past the deadline.
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn summary(&self) -> (Duration, usize) {
        let total: Duration = self.samples.iter().sum();
        (total / self.samples.len().max(1) as u32, self.samples.len())
    }
}

/// Opaque value barrier preventing the optimizer from deleting the routine.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(100));
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_function("x", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
