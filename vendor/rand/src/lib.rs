//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s API it actually uses: [`RngCore`],
//! [`SeedableRng`], [`Rng::gen_range`] over integer and float ranges, and a
//! [`rngs::SmallRng`] backed by xoshiro256++ (the same algorithm rand 0.8
//! uses for `SmallRng` on 64-bit targets), seeded through splitmix64 exactly
//! like rand's `seed_from_u64`. Determinism is the only contract callers
//! rely on; every consumer threads its own seed.

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations. The generators here are
/// infallible; this exists so signatures mirror the real crate.
pub struct Error;

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 (the
    /// same expansion the real crate uses, so seeds stay portable).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift reduction; bias is < 2^-64 per draw,
                // far below anything the statistical tests here resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i64).wrapping_add(hi as i64)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start at the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let b: u8 = r.gen_range(0..100u8);
            assert!(b < 100);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
