//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` with the subset of the API this workspace
//! uses: `unbounded`, cloneable `Sender`, and a `Receiver` supporting
//! `recv`/`recv_timeout`/`try_recv`. Backed by `std::sync::mpsc`; the
//! receiver is additionally shareable (crossbeam receivers are mpmc) by
//! serializing access through a mutex.

pub mod channel {
    //! Multi-producer channels mirroring `crossbeam::channel`.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a channel; cloneable and shareable.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn timeout_reports_empty_channel() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
