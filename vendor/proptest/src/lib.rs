//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest's API this workspace uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, integer and
//! float range strategies, tuple strategies, [`strategy::Just`],
//! [`prop_oneof!`], `any::<T>()`, [`collection::vec`], and the
//! `prop_assert*` macros. Cases are generated from a per-test deterministic
//! seed (mixed with the case index), so a failure message's `case`/`seed`
//! pair always reproduces the exact inputs. There is no shrinking: the
//! failing case is reported as generated.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of an associated type from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (helper for [`prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + hi as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    ((self.start as i64).wrapping_add(hi as i64)) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Weighted union of boxed strategies (built by [`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = ((rng.next_u64() as u128 * self.total as u128) >> 64) as u64;
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick within total")
        }
    }

    /// Types with a canonical default strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`]; produced by `any::<T>()`.
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any` entry point.

    use crate::strategy::{AnyStrategy, Arbitrary};

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy::default()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len =
                self.size.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner configuration and RNG.

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Error produced by a failing `prop_assert*` inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Marks the current case as failed with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator driving strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one case.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Derives the per-case seed. Mixing the test name keeps sibling
    /// properties independent even at the same case index.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = result {
                    panic!("proptest {} failed at case {case} (seed {seed:#x}): {e}",
                        stringify!($name));
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..25, y in 0u8..3) {
            prop_assert!((5..25).contains(&x));
            prop_assert!(y < 3, "y was {y}");
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec((0u32..10).prop_map(|n| n * 2), 1..20)) {
            prop_assert!(!v.is_empty());
            for n in v {
                prop_assert_eq!(n % 2, 0);
            }
        }

        #[test]
        fn oneof_picks_every_arm(picks in crate::collection::vec(prop_oneof![
            3 => Just(1u8),
            1 => (10u8..12).prop_map(|x| x),
        ], 50..80)) {
            for p in &picks {
                prop_assert!(*p == 1 || *p == 10 || *p == 11);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{case_seed, TestRng};
        let strat = crate::collection::vec(0u64..1000, 1..30);
        let a = strat.generate(&mut TestRng::new(case_seed("t", 7)));
        let b = strat.generate(&mut TestRng::new(case_seed("t", 7)));
        assert_eq!(a, b);
    }
}
